//! Bricking: splitting a volume into block-shaped chunks for distribution
//! across rendering nodes (§III-C). Bricks carry one layer of ghost voxels
//! on interior faces so trilinear sampling and gradients stay seamless at
//! brick boundaries.

use crate::grid::{Scalar, Volume};
use serde::{Deserialize, Serialize};

/// One brick of a decomposed volume.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Brick<T> {
    /// Index of this brick within the decomposition.
    pub index: usize,
    /// Offset of the brick's *core* region in the source volume (x, y, z).
    pub offset: [usize; 3],
    /// Dimensions of the core region (without ghosts).
    pub core_dims: [usize; 3],
    /// Ghost layers present on the low/high side of each axis (0 or 1).
    pub ghost_lo: [usize; 3],
    /// Ghost layers present on the high side of each axis.
    pub ghost_hi: [usize; 3],
    /// The voxel data including ghosts.
    pub volume: Volume<T>,
}

impl<T: Scalar> Brick<T> {
    /// Bounding box of the core region in source-volume voxel coordinates:
    /// `(min, max)` inclusive.
    pub fn core_bounds(&self) -> ([usize; 3], [usize; 3]) {
        let max = [
            self.offset[0] + self.core_dims[0] - 1,
            self.offset[1] + self.core_dims[1] - 1,
            self.offset[2] + self.core_dims[2] - 1,
        ];
        (self.offset, max)
    }

    /// Sample the brick at *source-volume* continuous coordinates; the
    /// caller must keep coordinates within the core bounds (ghosts make the
    /// interpolation correct right up to the boundary).
    pub fn sample_global(&self, x: f32, y: f32, z: f32) -> f32 {
        let lx = x - (self.offset[0] as f32 - self.ghost_lo[0] as f32);
        let ly = y - (self.offset[1] as f32 - self.ghost_lo[1] as f32);
        let lz = z - (self.offset[2] as f32 - self.ghost_lo[2] as f32);
        self.volume.sample(lx, ly, lz)
    }
}

/// Split `volume` into `count` slabs along the z axis, each with one ghost
/// layer toward its neighbors. The slab boundaries are as even as possible;
/// `count` must not exceed the z extent.
pub fn split_z<T: Scalar>(volume: &Volume<T>, count: usize) -> Vec<Brick<T>> {
    assert!(count > 0, "need at least one brick");
    let [nx, ny, nz] = volume.dims;
    assert!(count <= nz, "cannot split {nz} slices into {count} bricks");

    let mut bricks = Vec::with_capacity(count);
    let base = nz / count;
    let rem = nz % count;
    let mut z0 = 0usize;
    for i in 0..count {
        let core_z = base + usize::from(i < rem);
        let glo = usize::from(i > 0);
        let ghi = usize::from(i + 1 < count);
        let zlo = z0 - glo;
        let zhi = z0 + core_z + ghi; // exclusive
        let mut data = Vec::with_capacity(nx * ny * (zhi - zlo));
        for z in zlo..zhi {
            for y in 0..ny {
                for x in 0..nx {
                    data.push(volume.at(x, y, z));
                }
            }
        }
        bricks.push(Brick {
            index: i,
            offset: [0, 0, z0],
            core_dims: [nx, ny, core_z],
            ghost_lo: [0, 0, glo],
            ghost_hi: [0, 0, ghi],
            volume: Volume {
                dims: [nx, ny, zhi - zlo],
                spacing: volume.spacing,
                data,
            },
        });
        z0 += core_z;
    }
    bricks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Volume<f32> {
        // Value = global z index, so cross-brick sampling is easy to check.
        let mut v = Volume::zeros([4, 3, 10]);
        for z in 0..10 {
            for y in 0..3 {
                for x in 0..4 {
                    *v.at_mut(x, y, z) = z as f32;
                }
            }
        }
        v
    }

    #[test]
    fn split_covers_volume_without_overlap() {
        let v = ramp();
        let bricks = split_z(&v, 3);
        assert_eq!(bricks.len(), 3);
        let mut covered = [false; 10];
        for b in &bricks {
            let (lo, hi) = b.core_bounds();
            for slot in covered.iter_mut().take(hi[2] + 1).skip(lo[2]) {
                assert!(!*slot, "slice covered twice");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "every slice covered");
        // 10 = 4 + 3 + 3.
        assert_eq!(bricks[0].core_dims[2], 4);
        assert_eq!(bricks[1].core_dims[2], 3);
        assert_eq!(bricks[2].core_dims[2], 3);
    }

    #[test]
    fn ghost_layers_only_on_interior_faces() {
        let v = ramp();
        let bricks = split_z(&v, 3);
        assert_eq!(bricks[0].ghost_lo[2], 0);
        assert_eq!(bricks[0].ghost_hi[2], 1);
        assert_eq!(bricks[1].ghost_lo[2], 1);
        assert_eq!(bricks[1].ghost_hi[2], 1);
        assert_eq!(bricks[2].ghost_lo[2], 1);
        assert_eq!(bricks[2].ghost_hi[2], 0);
        // Brick 1 holds core z=4..6 plus ghosts z=3 and z=7.
        assert_eq!(bricks[1].volume.dims[2], 5);
    }

    #[test]
    fn global_sampling_matches_source_within_core() {
        let v = ramp();
        let bricks = split_z(&v, 3);
        for b in &bricks {
            let (lo, hi) = b.core_bounds();
            for z10 in (lo[2] * 10)..=(hi[2] * 10) {
                let z = z10 as f32 / 10.0;
                let from_brick = b.sample_global(1.5, 1.0, z);
                let from_volume = v.sample(1.5, 1.0, z);
                assert!(
                    (from_brick - from_volume).abs() < 1e-5,
                    "brick {} mismatch at z = {z}: {from_brick} vs {from_volume}",
                    b.index
                );
            }
        }
    }

    #[test]
    fn single_brick_is_whole_volume() {
        let v = ramp();
        let bricks = split_z(&v, 1);
        assert_eq!(bricks.len(), 1);
        assert_eq!(bricks[0].volume.dims, v.dims);
        assert_eq!(bricks[0].ghost_lo, [0, 0, 0]);
        assert_eq!(bricks[0].ghost_hi, [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_bricks_rejected() {
        let v = ramp();
        split_z(&v, 11);
    }
}
