//! Value histograms, used to design transfer functions and to sanity-check
//! synthetic fields.

use crate::grid::{Scalar, Volume};

/// A fixed-bin histogram over `[0, 1]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Histogram of a volume's (normalized) values.
    pub fn of<T: Scalar>(v: &Volume<T>, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        let mut h = vec![0u64; bins];
        for value in &v.data {
            let f = value.to_f32().clamp(0.0, 1.0);
            let i = ((f * bins as f32) as usize).min(bins - 1);
            h[i] += 1;
        }
        Histogram {
            total: v.len() as u64,
            bins: h,
        }
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of samples in bins covering `[lo, hi)` of the value range.
    pub fn fraction_between(&self, lo: f32, hi: f32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.bins.len() as f32;
        let from = ((lo.clamp(0.0, 1.0) * n) as usize).min(self.bins.len());
        let to = ((hi.clamp(0.0, 1.0) * n) as usize).min(self.bins.len());
        let sum: u64 = self.bins[from..to].iter().sum();
        sum as f64 / self.total as f64
    }

    /// The value (bin center) below which `q` of the mass lies.
    pub fn quantile(&self, q: f64) -> f32 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &count) in self.bins.iter().enumerate() {
            acc += count;
            if acc >= target {
                return (i as f32 + 0.5) / self.bins.len() as f32;
            }
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_total() {
        let v: Volume<f32> = Volume::from_fn([10, 10, 10], |x, _, _| x);
        let h = Histogram::of(&v, 16);
        assert_eq!(h.bins().iter().sum::<u64>(), 1000);
        assert_eq!(h.total(), 1000);
    }

    #[test]
    fn uniform_ramp_fills_bins_evenly() {
        let v: Volume<f32> = Volume::from_fn([100, 10, 1], |x, _, _| x);
        let h = Histogram::of(&v, 10);
        for &count in h.bins() {
            assert_eq!(count, 100);
        }
        assert!((h.fraction_between(0.0, 0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn quantile_of_ramp_is_linear() {
        let v: Volume<f32> = Volume::from_fn([1000, 1, 1], |x, _, _| x);
        let h = Histogram::of(&v, 100);
        assert!((h.quantile(0.5) - 0.5).abs() < 0.02);
        assert!((h.quantile(0.9) - 0.9).abs() < 0.02);
    }

    #[test]
    fn out_of_range_values_clamp_to_edge_bins() {
        let mut v: Volume<f32> = Volume::zeros([2, 1, 1]);
        *v.at_mut(0, 0, 0) = -3.0;
        *v.at_mut(1, 0, 0) = 42.0;
        let h = Histogram::of(&v, 4);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[3], 1);
    }
}
