//! Property tests for the consistent-hash ring: load balance within a
//! bound, monotone remap on shard addition, and deterministic placement
//! under a fixed seed.

use proptest::prelude::*;
use vizsched_core::ids::ShardId;
use vizsched_routing::{HashRing, DEFAULT_REPLICAS};

proptest! {
    /// Balance: with the default virtual-point count, no shard's share
    /// of a large key population strays past 4x the fair share (nor
    /// below a quarter of it). The bound is deliberately loose — the
    /// point is that every shard takes real load and none hoards it.
    #[test]
    fn keys_balance_across_shards(shards in 2usize..=16, seed in 0u64..64) {
        let mut ring = HashRing::new(DEFAULT_REPLICAS, seed);
        for s in 0..shards {
            ring.add_shard(ShardId(s as u32));
        }
        const KEYS: u64 = 8192;
        let mut counts = vec![0u64; shards];
        for k in 0..KEYS {
            counts[ring.shard_for(k).index()] += 1;
        }
        let fair = KEYS as f64 / shards as f64;
        for (s, &n) in counts.iter().enumerate() {
            prop_assert!(
                (n as f64) < 4.0 * fair && (n as f64) > fair / 4.0,
                "shard {s} owns {n} of {KEYS} keys (fair share {fair:.0})"
            );
        }
    }

    /// Monotone remap: adding a shard moves a key only if the new shard
    /// now owns it — no key migrates between pre-existing shards.
    #[test]
    fn adding_a_shard_remaps_monotonically(shards in 1usize..=15, seed in 0u64..64) {
        let mut ring = HashRing::new(DEFAULT_REPLICAS, seed);
        for s in 0..shards {
            ring.add_shard(ShardId(s as u32));
        }
        let before: Vec<ShardId> = (0..4096u64).map(|k| ring.shard_for(k)).collect();
        let newcomer = ShardId(shards as u32);
        ring.add_shard(newcomer);
        for (k, &old) in before.iter().enumerate() {
            let now = ring.shard_for(k as u64);
            prop_assert!(
                now == old || now == newcomer,
                "key {k} moved {old} -> {now}, not to the new shard"
            );
        }
    }

    /// The expected remap volume is roughly 1/(n+1) of the keys; assert
    /// it never exceeds half the population (a gross-misbehavior guard
    /// that still catches a rehash-everything regression).
    #[test]
    fn remap_volume_is_minimal(shards in 2usize..=15, seed in 0u64..64) {
        let mut ring = HashRing::new(DEFAULT_REPLICAS, seed);
        for s in 0..shards {
            ring.add_shard(ShardId(s as u32));
        }
        const KEYS: u64 = 4096;
        let before: Vec<ShardId> = (0..KEYS).map(|k| ring.shard_for(k)).collect();
        ring.add_shard(ShardId(shards as u32));
        let moved = (0..KEYS)
            .filter(|&k| ring.shard_for(k) != before[k as usize])
            .count();
        prop_assert!(
            moved as u64 <= KEYS / 2,
            "{moved} of {KEYS} keys moved on one shard addition"
        );
    }

    /// Determinism: two rings built from the same (seed, shard set,
    /// replicas) place every key identically — even when the shards are
    /// added in a different order.
    #[test]
    fn placement_is_deterministic(shards in 1usize..=16, seed in 0u64..u64::MAX) {
        let mut a = HashRing::new(DEFAULT_REPLICAS, seed);
        let mut b = HashRing::new(DEFAULT_REPLICAS, seed);
        for s in 0..shards {
            a.add_shard(ShardId(s as u32));
        }
        for s in (0..shards).rev() {
            b.add_shard(ShardId(s as u32));
        }
        for k in 0..2048u64 {
            prop_assert_eq!(a.shard_for(k), b.shard_for(k));
        }
    }

    /// Removing a shard sends its keys elsewhere and leaves every other
    /// key in place (the inverse of the monotone-add property).
    #[test]
    fn removing_a_shard_remaps_only_its_keys(shards in 2usize..=16, seed in 0u64..64) {
        let mut ring = HashRing::new(DEFAULT_REPLICAS, seed);
        for s in 0..shards {
            ring.add_shard(ShardId(s as u32));
        }
        let victim = ShardId((shards as u32) / 2);
        let before: Vec<ShardId> = (0..4096u64).map(|k| ring.shard_for(k)).collect();
        ring.remove_shard(victim);
        for (k, &old) in before.iter().enumerate() {
            let now = ring.shard_for(k as u64);
            if old == victim {
                prop_assert_ne!(now, victim);
            } else {
                prop_assert_eq!(now, old, "key {} fled a surviving shard", k);
            }
        }
    }
}
