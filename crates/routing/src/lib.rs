//! Consistent-hash routing tier for sharded multi-head scheduling.
//!
//! One head node's Algorithm 1 cycle loop is the hard ceiling on users
//! and cluster size. This crate supplies the two pieces that break it:
//!
//! * [`HashRing`] — a consistent-hash ring over packed [`ChunkId`] keys
//!   (virtual points per shard, deterministic seed). Jobs route by the
//!   owner of their dataset's *first* chunk, so every job of a dataset
//!   lands on the same shard and the shard's `Cache[c]` table keeps
//!   seeing the full chunk set — locality survives the routing hop.
//!   Adding or removing a shard remaps only the keys the changed shard
//!   owns (the classic minimal-disruption property).
//! * [`ShardMap`] — a topology-aware partition of the physical nodes
//!   into shards. Nodes are grouped into fixed-size *leaf groups*
//!   (leaf/spine-style: a leaf switch connects a few nodes, leaves meet
//!   at a spine), and a shard is a run of whole leaves, so intra-shard
//!   compositing traffic stays under as few switches as possible and a
//!   shard never straddles a leaf.
//!
//! The sharded runtime composes both: the ring decides *which* shard a
//! job belongs to, the map decides *which physical nodes* that shard's
//! cycle loop may dispatch to, and translates between a shard's local
//! node indices and the cluster-global [`NodeId`]s.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use vizsched_core::ids::{ChunkId, DatasetId, NodeId, ShardId};

/// Default number of virtual points each shard contributes to the ring.
///
/// 64 points keeps the ring a few cache lines per shard while bounding
/// the expected per-shard load imbalance to a few tens of percent — the
/// balance property test pins the actual bound.
pub const DEFAULT_REPLICAS: usize = 64;

/// Default leaf-group width for [`ShardMap::leaf_spine`].
///
/// Matches the reference topology this design borrows (a 128-node
/// cluster wired as 32 leaf switches of 4 nodes under one spine).
pub const DEFAULT_LEAF: usize = 4;

/// SplitMix64 finalizer: a cheap, statistically solid 64-bit mixer.
/// Used for both key hashing and virtual-point placement so the ring is
/// fully deterministic from `(seed, shards, replicas)`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping packed chunk keys onto shards.
///
/// Each shard owns [`replicas`](HashRing::replicas) pseudo-random points
/// on a `u64` circle; a key belongs to the shard owning the first point
/// clockwise of the key's hash. The ring is deterministic: the same
/// `(seed, shard set, replicas)` always yields the same placement, on
/// every substrate — the parity argument for sharded runs rests on this.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Virtual points, sorted by position. Position collisions resolve
    /// by shard id so insertion order can never matter.
    points: Vec<(u64, ShardId)>,
    shards: Vec<ShardId>,
    replicas: usize,
    seed: u64,
}

impl HashRing {
    /// An empty ring with the given virtual-point count and hash seed.
    pub fn new(replicas: usize, seed: u64) -> Self {
        assert!(replicas > 0, "a shard must contribute at least one point");
        HashRing {
            points: Vec::new(),
            shards: Vec::new(),
            replicas,
            seed,
        }
    }

    /// A ring pre-populated with shards `S0..Sn`, default replicas, seed 0.
    pub fn with_shards(n: usize) -> Self {
        let mut ring = HashRing::new(DEFAULT_REPLICAS, 0);
        for s in 0..n {
            ring.add_shard(ShardId(s as u32));
        }
        ring
    }

    /// Virtual points contributed per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Shards currently on the ring, in insertion order.
    pub fn shards(&self) -> &[ShardId] {
        &self.shards
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Position of virtual point `r` of `shard`.
    #[inline]
    fn point(&self, shard: ShardId, r: usize) -> u64 {
        mix64(self.seed ^ mix64(((shard.0 as u64) << 32) | r as u64))
    }

    /// Add a shard: inserts its virtual points. Only keys that now hash
    /// to one of the new points move — everything else keeps its owner.
    ///
    /// # Panics
    /// If the shard is already on the ring.
    pub fn add_shard(&mut self, shard: ShardId) {
        assert!(
            !self.shards.contains(&shard),
            "shard {shard} already on the ring"
        );
        self.shards.push(shard);
        for r in 0..self.replicas {
            let pos = self.point(shard, r);
            let at = self
                .points
                .binary_search(&(pos, shard))
                .unwrap_or_else(|i| i);
            self.points.insert(at, (pos, shard));
        }
    }

    /// Remove a shard: deletes its virtual points, so only the keys it
    /// owned remap (to each arc's clockwise successor).
    ///
    /// # Panics
    /// If the shard is not on the ring.
    pub fn remove_shard(&mut self, shard: ShardId) {
        let at = self
            .shards
            .iter()
            .position(|&s| s == shard)
            .unwrap_or_else(|| panic!("shard {shard} not on the ring"));
        self.shards.remove(at);
        self.points.retain(|&(_, s)| s != shard);
    }

    /// The shard owning a raw `u64` key.
    ///
    /// # Panics
    /// If the ring is empty.
    pub fn shard_for(&self, key: u64) -> ShardId {
        assert!(!self.points.is_empty(), "routing over an empty ring");
        let h = mix64(key ^ self.seed.rotate_left(32));
        // First point at or after the key's hash, wrapping at the top.
        let at = self.points.partition_point(|&(pos, _)| pos < h);
        let at = if at == self.points.len() { 0 } else { at };
        self.points[at].1
    }

    /// The shard owning a chunk.
    pub fn shard_for_chunk(&self, chunk: ChunkId) -> ShardId {
        self.shard_for(chunk.as_u64())
    }

    /// The shard a dataset's jobs route to: the owner of the dataset's
    /// first chunk. Keying the whole dataset by one chunk keeps every
    /// job of the dataset — and therefore every chunk the shard caches
    /// for it — on a single shard, preserving `Cache[c]` locality.
    pub fn shard_for_dataset(&self, dataset: DatasetId) -> ShardId {
        self.shard_for_chunk(ChunkId::new(dataset, 0))
    }
}

/// One shard's slice of the physical cluster: a contiguous run of nodes
/// `[base, base + nodes)` in global numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardNodes {
    /// The shard.
    pub shard: ShardId,
    /// First global node index owned by this shard.
    pub base: u32,
    /// Number of nodes in the shard.
    pub nodes: u32,
}

/// A topology-aware partition of `p` nodes into shards.
///
/// Nodes are read as leaf groups of [`leaf`](ShardMap::leaf) consecutive
/// nodes (the nodes under one leaf switch); shards are runs of *whole*
/// leaves, as equal in node count as leaf granularity allows. Earlier
/// shards absorb any remainder leaf, so shard sizes differ by at most
/// one leaf.
#[derive(Clone, Debug)]
pub struct ShardMap {
    spans: Vec<ShardNodes>,
    leaf: usize,
    total: usize,
}

impl ShardMap {
    /// Partition `nodes` nodes into `shards` shards along leaf-group
    /// boundaries of width `leaf`.
    ///
    /// # Panics
    /// If `shards == 0`, `leaf == 0`, or there are fewer leaves than
    /// shards (a shard must own at least one whole leaf).
    pub fn leaf_spine(nodes: usize, shards: usize, leaf: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(leaf > 0, "leaf groups must be non-empty");
        // A trailing partial leaf (cluster size not a multiple of the
        // leaf width) is one more leaf to hand out.
        let leaves = nodes.div_ceil(leaf);
        assert!(
            leaves >= shards,
            "fewer leaves ({leaves}) than shards ({shards}): shrink the leaf width"
        );
        let per = leaves / shards;
        let extra = leaves % shards;
        let mut spans = Vec::with_capacity(shards);
        let mut next_leaf = 0usize;
        for s in 0..shards {
            let take = per + usize::from(s < extra);
            let base = next_leaf * leaf;
            next_leaf += take;
            let end = (next_leaf * leaf).min(nodes);
            spans.push(ShardNodes {
                shard: ShardId(s as u32),
                base: base as u32,
                nodes: (end - base) as u32,
            });
        }
        ShardMap {
            spans,
            leaf,
            total: nodes,
        }
    }

    /// Partition with the default leaf width ([`DEFAULT_LEAF`]), falling
    /// back to single-node leaves when the cluster is too small for the
    /// default (so tiny parity clusters still shard).
    pub fn new(nodes: usize, shards: usize) -> Self {
        let leaf = if nodes >= shards * DEFAULT_LEAF {
            DEFAULT_LEAF
        } else {
            1
        };
        ShardMap::leaf_spine(nodes, shards, leaf)
    }

    /// Leaf-group width the partition was built with.
    pub fn leaf(&self) -> usize {
        self.leaf
    }

    /// Total nodes across all shards.
    pub fn total_nodes(&self) -> usize {
        self.total
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the map has no shards (never true for a constructed map).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Per-shard spans, in shard order.
    pub fn spans(&self) -> &[ShardNodes] {
        &self.spans
    }

    /// The span of one shard.
    ///
    /// # Panics
    /// If the shard is out of range.
    pub fn span(&self, shard: ShardId) -> ShardNodes {
        self.spans[shard.index()]
    }

    /// The shard owning a global node.
    ///
    /// # Panics
    /// If the node is out of range.
    pub fn shard_of_node(&self, node: NodeId) -> ShardId {
        assert!((node.index()) < self.total, "node {node} out of range");
        // Spans are contiguous and sorted by base.
        let at = self
            .spans
            .partition_point(|s| (s.base as usize) <= node.index());
        self.spans[at - 1].shard
    }

    /// Translate a shard-local node index to the global [`NodeId`].
    ///
    /// # Panics
    /// If the local index is outside the shard.
    pub fn global(&self, shard: ShardId, local: NodeId) -> NodeId {
        let span = self.span(shard);
        assert!(local.0 < span.nodes, "local node {local} outside {shard}");
        NodeId(span.base + local.0)
    }

    /// Translate a global node to `(shard, local index)`.
    ///
    /// # Panics
    /// If the node is out of range.
    pub fn local(&self, node: NodeId) -> (ShardId, NodeId) {
        let shard = self.shard_of_node(node);
        let span = self.span(shard);
        (shard, NodeId(node.0 - span.base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_routes_consistently() {
        let ring = HashRing::with_shards(4);
        for key in 0..1000u64 {
            assert_eq!(ring.shard_for(key), ring.shard_for(key));
        }
    }

    #[test]
    fn dataset_routing_keys_on_first_chunk() {
        let ring = HashRing::with_shards(8);
        for d in 0..100u32 {
            assert_eq!(
                ring.shard_for_dataset(DatasetId(d)),
                ring.shard_for_chunk(ChunkId::new(DatasetId(d), 0))
            );
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::with_shards(1);
        for key in 0..100u64 {
            assert_eq!(ring.shard_for(key), ShardId(0));
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_keys() {
        let mut ring = HashRing::with_shards(5);
        let before: Vec<ShardId> = (0..10_000).map(|k| ring.shard_for(k)).collect();
        ring.remove_shard(ShardId(2));
        for (k, &owner) in before.iter().enumerate() {
            if owner != ShardId(2) {
                assert_eq!(ring.shard_for(k as u64), owner, "key {k} moved needlessly");
            } else {
                assert_ne!(ring.shard_for(k as u64), ShardId(2));
            }
        }
    }

    #[test]
    #[should_panic(expected = "already on the ring")]
    fn duplicate_shard_panics() {
        let mut ring = HashRing::with_shards(2);
        ring.add_shard(ShardId(1));
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_panics_on_route() {
        HashRing::new(8, 0).shard_for(1);
    }

    #[test]
    fn map_partitions_exactly_and_roundtrips() {
        for (nodes, shards) in [(128usize, 16usize), (1024, 16), (64, 4), (4, 4), (10, 3)] {
            let map = ShardMap::new(nodes, shards);
            assert_eq!(map.len(), shards);
            let covered: usize = map.spans().iter().map(|s| s.nodes as usize).sum();
            assert_eq!(covered, nodes, "{nodes}x{shards}: nodes lost or doubled");
            for n in 0..nodes {
                let (shard, local) = map.local(NodeId(n as u32));
                assert_eq!(map.global(shard, local), NodeId(n as u32));
            }
        }
    }

    #[test]
    fn map_respects_leaf_boundaries() {
        let map = ShardMap::leaf_spine(128, 16, DEFAULT_LEAF);
        for span in map.spans() {
            assert_eq!(
                span.base as usize % DEFAULT_LEAF,
                0,
                "{}: shard straddles a leaf switch",
                span.shard
            );
            assert_eq!(span.nodes, 8, "128/16 with whole leaves is 2 leaves each");
        }
    }

    #[test]
    fn map_sizes_differ_by_at_most_one_leaf() {
        let map = ShardMap::leaf_spine(1000, 16, 4);
        let min = map.spans().iter().map(|s| s.nodes).min().unwrap();
        let max = map.spans().iter().map(|s| s.nodes).max().unwrap();
        assert!(max - min <= 4, "imbalance {max}-{min} exceeds one leaf");
    }

    #[test]
    #[should_panic(expected = "fewer leaves")]
    fn too_few_leaves_panics() {
        ShardMap::leaf_spine(8, 4, 4);
    }
}
