//! A latency/bandwidth-modelled communicator: wraps any transport and
//! *accounts* the virtual network time each rank's messages would take on a
//! real interconnect. Compositing algorithms run unchanged; afterwards each
//! endpoint reports the modelled communication time, so the swap-family's
//! bandwidth advantage over direct-send can be quantified without hardware
//! (the §II-A argument that compositing "can become very expensive because
//! of the potentially large amount of messages exchanged").

use crate::comm::{Communicator, ImagePart};
use vizsched_core::time::SimDuration;

/// Interconnect parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Per-message latency.
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth: u64,
}

impl LinkModel {
    /// Gigabit Ethernet: ~50 µs latency, ~110 MB/s effective.
    pub fn gigabit() -> Self {
        LinkModel {
            latency: SimDuration::from_micros(50),
            bandwidth: 110 * (1 << 20),
        }
    }

    /// DDR InfiniBand of the paper's era: ~2 µs latency, ~1.5 GB/s.
    pub fn infiniband() -> Self {
        LinkModel {
            latency: SimDuration::from_micros(2),
            bandwidth: 1536 * (1 << 20),
        }
    }

    /// Modelled time to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        assert!(self.bandwidth > 0, "bandwidth must be positive");
        let micros = (bytes as u128 * 1_000_000 / self.bandwidth as u128) as u64;
        self.latency + SimDuration::from_micros(micros)
    }
}

/// A communicator that forwards to an inner transport while accumulating the
/// modelled cost of every byte it sends and receives.
pub struct ModelledComm<C> {
    inner: C,
    link: LinkModel,
    send_time: SimDuration,
    recv_time: SimDuration,
    bytes_sent: u64,
    messages_sent: u64,
}

const BYTES_PER_PIXEL: u64 = 16; // four f32 channels

impl<C: Communicator> ModelledComm<C> {
    /// Wrap `inner` with the given link model.
    pub fn new(inner: C, link: LinkModel) -> Self {
        ModelledComm {
            inner,
            link,
            send_time: SimDuration::ZERO,
            recv_time: SimDuration::ZERO,
            bytes_sent: 0,
            messages_sent: 0,
        }
    }

    /// Modelled time spent sending.
    pub fn send_time(&self) -> SimDuration {
        self.send_time
    }

    /// Modelled time spent receiving.
    pub fn recv_time(&self) -> SimDuration {
        self.recv_time
    }

    /// Total payload bytes sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// The higher of send/receive time: a serial-link lower bound on this
    /// rank's communication span.
    pub fn comm_span(&self) -> SimDuration {
        self.send_time.max(self.recv_time)
    }
}

impl<C: Communicator> Communicator for ModelledComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, to: usize, tag: u32, part: ImagePart) {
        let bytes = part.pixels.len() as u64 * BYTES_PER_PIXEL;
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        self.send_time += self.link.transfer_time(bytes);
        self.inner.send(to, tag, part);
    }

    fn recv_from(&mut self, from: usize, tag: u32) -> ImagePart {
        let part = self.inner.recv_from(from, tag);
        let bytes = part.pixels.len() as u64 * BYTES_PER_PIXEL;
        self.recv_time += self.link.transfer_time(bytes);
        part
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{binary_swap, composite_reference};
    use crate::comm::InProcComm;
    use vizsched_render::RgbaImage;

    fn layers(p: usize, w: usize, h: usize) -> Vec<RgbaImage> {
        (0..p)
            .map(|i| {
                let mut img = RgbaImage::transparent(w, h);
                for (j, px) in img.pixels.iter_mut().enumerate() {
                    let a = 0.3 + 0.4 * (((i + j) % 5) as f32 / 4.0);
                    *px = [a * 0.6, a * 0.2, a * 0.1, a];
                }
                img
            })
            .collect()
    }

    /// Run binary swap under the model and return (result, per-rank spans,
    /// per-rank bytes).
    fn run_modelled(
        images: Vec<RgbaImage>,
        link: LinkModel,
    ) -> (RgbaImage, Vec<SimDuration>, Vec<u64>) {
        let comms = InProcComm::create(images.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (comm, image) in comms.into_iter().zip(images) {
                handles.push(scope.spawn(move || {
                    let mut modelled = ModelledComm::new(comm, link);
                    let out = binary_swap(&mut modelled, image);
                    (out, modelled.comm_span(), modelled.bytes_sent())
                }));
            }
            let mut result = None;
            let mut spans = Vec::new();
            let mut bytes = Vec::new();
            for handle in handles {
                let (out, span, sent) = handle.join().expect("rank thread");
                if let Some(img) = out {
                    result = Some(img);
                }
                spans.push(span);
                bytes.push(sent);
            }
            (result.expect("root image"), spans, bytes)
        })
    }

    #[test]
    fn wrapping_does_not_change_the_image() {
        let images = layers(4, 16, 16);
        let expect = composite_reference(&images);
        let (got, _, _) = run_modelled(images, LinkModel::gigabit());
        assert!(got.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn swap_moves_less_data_than_direct_send_would() {
        // Direct send: p-1 ranks each ship a full image to the root.
        let p = 8;
        let (w, h) = (64, 64);
        let full_image_bytes = (w * h) as u64 * BYTES_PER_PIXEL;
        let direct_total = (p as u64 - 1) * full_image_bytes;
        let (_, _, bytes) = run_modelled(layers(p, w, h), LinkModel::gigabit());
        let swap_total: u64 = bytes.iter().sum();
        // Binary swap sends sum_r p * (image / 2^r)-ish per round plus the
        // gather; per *rank* it is ~(1 - 1/p + 1/p) images, so the total is
        // close to p images — but the per-rank maximum is what bounds the
        // critical path, and it is far below a full gather at the root.
        let max_rank = *bytes.iter().max().unwrap();
        assert!(
            max_rank < direct_total / 2,
            "per-rank traffic {max_rank} should be far below the root's {direct_total}"
        );
        assert!(swap_total > 0);
    }

    #[test]
    fn infiniband_beats_gigabit() {
        let images = layers(8, 64, 64);
        let (_, gige, _) = run_modelled(images.clone(), LinkModel::gigabit());
        let (_, ib, _) = run_modelled(images, LinkModel::infiniband());
        let worst_gige = gige.iter().max().unwrap();
        let worst_ib = ib.iter().max().unwrap();
        assert!(
            worst_ib.as_micros() * 5 < worst_gige.as_micros(),
            "InfiniBand span {worst_ib} should be well under GigE {worst_gige}"
        );
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth() {
        let link = LinkModel {
            latency: SimDuration::from_micros(10),
            bandwidth: 1 << 20,
        };
        assert_eq!(link.transfer_time(0), SimDuration::from_micros(10));
        assert_eq!(
            link.transfer_time(1 << 20),
            SimDuration::from_micros(10) + SimDuration::from_secs(1)
        );
    }
}
