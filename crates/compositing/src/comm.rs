//! The communication layer for parallel image compositing: a minimal
//! rank-addressed message-passing interface (the role MPI plays in the
//! paper's implementation) with an in-process channel transport.

use crossbeam::channel::{unbounded, Receiver, Sender};
use vizsched_render::Rgba;

/// A contiguous piece of an image, addressed by its starting pixel index.
#[derive(Clone, Debug, PartialEq)]
pub struct ImagePart {
    /// Index of the first pixel in the full image.
    pub start: usize,
    /// The pixels (premultiplied RGBA).
    pub pixels: Vec<Rgba>,
}

/// A tagged point-to-point message.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Sender rank.
    pub from: usize,
    /// Round/tag discriminator (compositing rounds run lock-step but
    /// messages can arrive early).
    pub tag: u32,
    /// Payload.
    pub part: ImagePart,
}

/// Rank-addressed messaging, enough for swap compositing.
pub trait Communicator {
    /// This process's rank, `0..size`.
    fn rank(&self) -> usize;
    /// Number of participants.
    fn size(&self) -> usize;
    /// Send to a peer (non-blocking).
    fn send(&mut self, to: usize, tag: u32, part: ImagePart);
    /// Receive the message with the given source and tag, buffering any
    /// other messages that arrive first (blocking).
    fn recv_from(&mut self, from: usize, tag: u32) -> ImagePart;
}

/// An in-process transport over crossbeam channels; `create(n)` returns one
/// endpoint per rank, to be moved into `n` threads.
pub struct InProcComm {
    rank: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Early arrivals awaiting their matching `recv_from`.
    stash: Vec<Message>,
}

impl InProcComm {
    /// Build a fully-connected group of `n` endpoints.
    pub fn create(n: usize) -> Vec<InProcComm> {
        assert!(n > 0, "communicator needs at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| InProcComm {
                rank,
                senders: senders.clone(),
                receiver,
                stash: Vec::new(),
            })
            .collect()
    }
}

impl Communicator for InProcComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.senders.len()
    }

    fn send(&mut self, to: usize, tag: u32, part: ImagePart) {
        let msg = Message {
            from: self.rank,
            tag,
            part,
        };
        self.senders[to]
            .send(msg)
            .expect("peer endpoint dropped before completion");
    }

    fn recv_from(&mut self, from: usize, tag: u32) -> ImagePart {
        if let Some(i) = self
            .stash
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            return self.stash.swap_remove(i).part;
        }
        loop {
            let msg = self.receiver.recv().expect("all peers disconnected");
            if msg.from == from && msg.tag == tag {
                return msg.part;
            }
            self.stash.push(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(start: usize, n: usize) -> ImagePart {
        ImagePart {
            start,
            pixels: vec![[start as f32; 4]; n],
        }
    }

    #[test]
    fn ping_pong_between_threads() {
        let mut comms = InProcComm::create(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        let t = std::thread::spawn(move || {
            let got = c1.recv_from(0, 7);
            c1.send(0, 8, got.clone());
            got
        });
        c0.send(1, 7, part(3, 4));
        let back = c0.recv_from(1, 8);
        assert_eq!(back, part(3, 4));
        assert_eq!(t.join().unwrap(), part(3, 4));
    }

    #[test]
    fn out_of_order_messages_are_stashed() {
        let mut comms = InProcComm::create(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.send(1, 2, part(2, 1));
        c0.send(1, 1, part(1, 1));
        // Receive tag 1 first although tag 2 arrived first.
        assert_eq!(c1.recv_from(0, 1), part(1, 1));
        assert_eq!(c1.recv_from(0, 2), part(2, 1));
    }

    #[test]
    fn rank_and_size_are_consistent() {
        let comms = InProcComm::create(5);
        for (i, c) in comms.iter().enumerate() {
            assert_eq!(c.rank(), i);
            assert_eq!(c.size(), 5);
        }
    }
}
