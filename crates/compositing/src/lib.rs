//! # vizsched-compositing
//!
//! Sort-last image compositing for distributed volume rendering (§II-A):
//! the binary-swap algorithm of Ma et al., the 2-3 swap generalization of
//! Yu et al. used by the paper's system, and a direct-send baseline — all
//! over a pluggable rank-addressed [`comm::Communicator`] whose in-process
//! implementation stands in for MPI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod comm;
pub mod driver;
pub mod modelled;
pub mod order;

pub use algorithms::{binary_swap, composite_reference, factor_23, swap23, swap_compositing};
pub use comm::{Communicator, ImagePart, InProcComm, Message};
pub use driver::{composite, CompositeAlgo};
pub use modelled::{LinkModel, ModelledComm};
pub use order::{sort_by_visibility, visibility_order};
