//! A convenience driver that runs a swap algorithm across threads — one
//! thread per "rendering node" — and returns the final frame. The live
//! service uses the per-rank functions directly; this driver serves the
//! single-process examples, tests, and benches.

use crate::algorithms::{binary_swap, composite_reference, factor_23, swap_compositing};
use crate::comm::InProcComm;
use crate::order::sort_by_visibility;
use vizsched_render::{Layer, RgbaImage};

/// The available compositing strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompositeAlgo {
    /// Every node sends its full layer to the root, which folds
    /// front-to-back. Simple, but root-bound — the baseline swap methods
    /// beat.
    DirectSend,
    /// Binary swap (Ma et al. 1994); layer count must be a power of two.
    BinarySwap,
    /// 2-3 swap (Yu et al. 2008); layer count must be `2^a · 3^b`.
    Swap23,
    /// Whatever fits: 2-3 swap when the count allows, else direct send.
    Auto,
}

/// Composite depth-tagged layers into the final frame.
///
/// ```
/// use vizsched_compositing::{composite, CompositeAlgo};
/// use vizsched_render::{Layer, RgbaImage};
///
/// let layers: Vec<Layer> = (0..4)
///     .map(|i| Layer { image: RgbaImage::transparent(8, 8), depth: i as f32 })
///     .collect();
/// let frame = composite(layers, CompositeAlgo::BinarySwap);
/// assert_eq!((frame.width, frame.height), (8, 8));
/// ```
pub fn composite(layers: Vec<Layer>, algo: CompositeAlgo) -> RgbaImage {
    assert!(!layers.is_empty(), "need at least one layer");
    let layers = sort_by_visibility(layers);
    let p = layers.len();
    let images: Vec<RgbaImage> = layers.into_iter().map(|l| l.image).collect();

    let effective = match algo {
        CompositeAlgo::Auto => {
            if p > 1 && factor_23(p).is_some() {
                CompositeAlgo::Swap23
            } else {
                CompositeAlgo::DirectSend
            }
        }
        other => other,
    };

    match effective {
        CompositeAlgo::DirectSend => composite_reference(&images),
        CompositeAlgo::BinarySwap => {
            assert!(p.is_power_of_two(), "binary swap needs 2^k layers, got {p}");
            run_threaded(images, binary_swap)
        }
        CompositeAlgo::Swap23 => {
            let factors =
                factor_23(p).unwrap_or_else(|| panic!("2-3 swap needs 2^a*3^b layers, got {p}"));
            run_threaded(images, move |comm, img| {
                swap_compositing(comm, img, &factors)
            })
        }
        CompositeAlgo::Auto => unreachable!("resolved above"),
    }
}

fn run_threaded<F>(images: Vec<RgbaImage>, per_rank: F) -> RgbaImage
where
    F: Fn(&mut InProcComm, RgbaImage) -> Option<RgbaImage> + Send + Sync,
{
    let comms = InProcComm::create(images.len());
    std::thread::scope(|scope| {
        let per_rank = &per_rank;
        let mut handles = Vec::new();
        for (mut comm, image) in comms.into_iter().zip(images) {
            handles.push(scope.spawn(move || per_rank(&mut comm, image)));
        }
        let mut result = None;
        for handle in handles {
            if let Some(img) = handle.join().expect("compositing thread panicked") {
                assert!(result.is_none(), "only the root returns an image");
                result = Some(img);
            }
        }
        result.expect("root produced the final image")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizsched_render::image::over;
    use vizsched_render::Rgba;

    /// Deterministic pseudo-random translucent layers.
    fn fake_layers(count: usize, width: usize, height: usize) -> Vec<Layer> {
        (0..count)
            .map(|i| {
                let mut image = RgbaImage::transparent(width, height);
                for (j, px) in image.pixels.iter_mut().enumerate() {
                    let h = (i * 31 + j * 17) % 97;
                    let a = 0.2 + 0.6 * (h as f32 / 96.0);
                    *px = [
                        a * ((i + 1) as f32 / count as f32),
                        a * (j % 7) as f32 / 7.0,
                        a * 0.5,
                        a,
                    ];
                }
                // Shuffled depths so visibility order != input order.
                Layer {
                    image,
                    depth: ((i * 7) % count) as f32 + 0.5,
                }
            })
            .collect()
    }

    fn assert_images_close(a: &RgbaImage, b: &RgbaImage, tol: f32) {
        assert_eq!(a.width, b.width);
        assert_eq!(a.height, b.height);
        let d = a.max_abs_diff(b);
        assert!(d <= tol, "images differ by {d}");
    }

    fn reference(layers: &[Layer]) -> RgbaImage {
        let sorted = sort_by_visibility(layers.to_vec());
        let images: Vec<RgbaImage> = sorted.into_iter().map(|l| l.image).collect();
        composite_reference(&images)
    }

    #[test]
    fn binary_swap_matches_reference() {
        for p in [2usize, 4, 8, 16] {
            let layers = fake_layers(p, 13, 7);
            let expect = reference(&layers);
            let got = composite(layers, CompositeAlgo::BinarySwap);
            assert_images_close(&got, &expect, 1e-5);
        }
    }

    #[test]
    fn swap23_matches_reference_for_mixed_radix() {
        for p in [2usize, 3, 6, 9, 12, 24] {
            let layers = fake_layers(p, 10, 9);
            let expect = reference(&layers);
            let got = composite(layers, CompositeAlgo::Swap23);
            assert_images_close(&got, &expect, 1e-5);
        }
    }

    #[test]
    fn auto_falls_back_to_direct_send() {
        // p = 5 has no 2-3 factorization.
        let layers = fake_layers(5, 6, 6);
        let expect = reference(&layers);
        let got = composite(layers, CompositeAlgo::Auto);
        assert_images_close(&got, &expect, 1e-6);
    }

    #[test]
    fn single_layer_passes_through() {
        let layers = fake_layers(1, 4, 4);
        let expect = layers[0].image.clone();
        let got = composite(layers, CompositeAlgo::Auto);
        assert_images_close(&got, &expect, 0.0);
    }

    #[test]
    fn over_fold_order_matters_and_is_respected() {
        // Two opaque layers: only the front one should be visible.
        let mut front = RgbaImage::transparent(1, 1);
        front.pixels[0] = [1.0, 0.0, 0.0, 1.0];
        let mut back = RgbaImage::transparent(1, 1);
        back.pixels[0] = [0.0, 1.0, 0.0, 1.0];
        // Given in back-to-front order; depths say otherwise.
        let layers = vec![
            Layer {
                image: back,
                depth: 9.0,
            },
            Layer {
                image: front.clone(),
                depth: 1.0,
            },
        ];
        let out = composite(layers, CompositeAlgo::BinarySwap);
        assert_eq!(out.pixels[0], front.pixels[0]);
    }

    #[test]
    fn premultiplied_over_sanity() {
        let a: Rgba = [0.3, 0.0, 0.0, 0.3];
        let b: Rgba = [0.0, 0.4, 0.0, 0.4];
        let c = over(a, b);
        assert!((c[3] - (0.3 + 0.4 * 0.7)).abs() < 1e-6);
    }
}
