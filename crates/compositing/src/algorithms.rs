//! Sort-last compositing algorithms (§II-A): the reference sequential
//! *over* fold, serial direct-send gather, and the swap family — binary
//! swap (Ma et al.) and 2-3 swap (Yu et al.) — implemented as one
//! mixed-radix exchange where every round uses a group size of 2 or 3.
//!
//! All algorithms require the participating layers to be supplied in
//! **visibility order** (front-most first); [`crate::order`] produces that
//! order from layer depths.

use crate::comm::{Communicator, ImagePart};
use vizsched_render::image::over;
use vizsched_render::{Rgba, RgbaImage};

/// Reference: fold the layers front-to-back sequentially. Ground truth for
/// every other algorithm and the correctness oracle in tests.
pub fn composite_reference(layers_front_first: &[RgbaImage]) -> RgbaImage {
    assert!(!layers_front_first.is_empty(), "need at least one layer");
    let mut it = layers_front_first.iter();
    let mut acc = it.next().expect("non-empty").clone();
    for layer in it {
        // acc is in front of layer: layer goes under.
        acc = {
            let mut below = layer.clone();
            below.under(&acc);
            below
        };
    }
    acc
}

/// Factor `p` into rounds of 2 and 3, or `None` if `p` has another prime
/// factor (the classic 2-3 swap constraint; other counts fall back to
/// direct-send in the driver).
pub fn factor_23(p: usize) -> Option<Vec<usize>> {
    assert!(p > 0, "group must be non-empty");
    let mut rest = p;
    let mut factors = Vec::new();
    while rest % 3 == 0 {
        factors.push(3);
        rest /= 3;
    }
    while rest % 2 == 0 {
        factors.push(2);
        rest /= 2;
    }
    if rest == 1 {
        Some(factors)
    } else {
        None
    }
}

/// One rank's role in a mixed-radix swap compositing: exchanges pieces with
/// its group partners round by round, ending with the root (rank 0) holding
/// the fully composited image. `factors` must multiply to `comm.size()` and
/// contain only 2s and 3s; ranks must be arranged in visibility order
/// (rank 0 front-most). Returns `Some(image)` on rank 0, `None` elsewhere.
pub fn swap_compositing<C: Communicator>(
    comm: &mut C,
    mine: RgbaImage,
    factors: &[usize],
) -> Option<RgbaImage> {
    let p = comm.size();
    let check: usize = factors.iter().product();
    assert_eq!(check, p, "factors {factors:?} do not multiply to {p}");
    assert!(
        factors.iter().all(|&f| f == 2 || f == 3),
        "factors must be 2 or 3"
    );

    let rank = comm.rank();
    let (width, height) = (mine.width, mine.height);
    // The region of the full image this rank currently owns, as a pixel
    // index range.
    let mut lo = 0usize;
    let mut hi = mine.len();
    let mut buffer: Vec<Rgba> = mine.pixels;

    let mut stride = 1usize;
    for (round, &f) in factors.iter().enumerate() {
        let digit = (rank / stride) % f;
        let group_base = rank - digit * stride;
        // Split [lo, hi) into f near-equal parts.
        let len = hi - lo;
        let part_bounds: Vec<(usize, usize)> = (0..f)
            .map(|j| {
                let a = lo + len * j / f;
                let b = lo + len * (j + 1) / f;
                (a, b)
            })
            .collect();

        // Send every part except mine to its owner.
        for (j, &(a, b)) in part_bounds.iter().enumerate() {
            if j == digit {
                continue;
            }
            let peer = group_base + j * stride;
            comm.send(
                peer,
                round as u32,
                ImagePart {
                    start: a,
                    pixels: buffer[a..b].to_vec(),
                },
            );
        }

        // Receive the other members' contributions for my part and blend
        // in visibility order (lower digit = lower rank = in front).
        let (keep_lo, keep_hi) = part_bounds[digit];
        let mut pieces: Vec<(usize, Vec<Rgba>)> = Vec::with_capacity(f);
        pieces.push((digit, buffer[keep_lo..keep_hi].to_vec()));
        for j in 0..f {
            if j == digit {
                continue;
            }
            let peer = group_base + j * stride;
            let part = comm.recv_from(peer, round as u32);
            assert_eq!(part.start, keep_lo, "peer sent the wrong region");
            assert_eq!(
                part.pixels.len(),
                keep_hi - keep_lo,
                "region length mismatch"
            );
            pieces.push((j, part.pixels));
        }
        pieces.sort_by_key(|&(j, _)| j);

        // Fold front-to-back into the kept region.
        let mut acc = pieces[0].1.clone();
        for (_, piece) in &pieces[1..] {
            for (a, &b) in acc.iter_mut().zip(piece.iter()) {
                *a = over(*a, b);
            }
        }
        buffer[keep_lo..keep_hi].copy_from_slice(&acc);
        lo = keep_lo;
        hi = keep_hi;
        stride *= f;
    }

    // Gather the 1/p regions at the root.
    const GATHER: u32 = u32::MAX;
    if rank == 0 {
        let mut assembled = vec![[0.0f32; 4]; width * height];
        assembled[lo..hi].copy_from_slice(&buffer[lo..hi]);
        for from in 1..p {
            let part = comm.recv_from(from, GATHER);
            assembled[part.start..part.start + part.pixels.len()].copy_from_slice(&part.pixels);
        }
        Some(RgbaImage {
            width,
            height,
            pixels: assembled,
        })
    } else {
        comm.send(
            0,
            GATHER,
            ImagePart {
                start: lo,
                pixels: buffer[lo..hi].to_vec(),
            },
        );
        None
    }
}

/// Binary swap: the all-2 factorization. `comm.size()` must be a power of
/// two.
pub fn binary_swap<C: Communicator>(comm: &mut C, mine: RgbaImage) -> Option<RgbaImage> {
    let p = comm.size();
    assert!(
        p.is_power_of_two(),
        "binary swap requires a power-of-two group, got {p}"
    );
    let rounds = p.trailing_zeros() as usize;
    let factors = vec![2usize; rounds];
    swap_compositing(comm, mine, &factors)
}

/// 2-3 swap: mixed radix for any `p = 2^a · 3^b` (Yu et al.'s scheme for
/// non-power-of-two processor counts).
pub fn swap23<C: Communicator>(comm: &mut C, mine: RgbaImage) -> Option<RgbaImage> {
    let p = comm.size();
    let factors =
        factor_23(p).unwrap_or_else(|| panic!("2-3 swap requires p = 2^a * 3^b, got {p}"));
    swap_compositing(comm, mine, &factors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_covers_2_3_mixes() {
        assert_eq!(factor_23(1), Some(vec![]));
        assert_eq!(factor_23(2), Some(vec![2]));
        assert_eq!(factor_23(6), Some(vec![3, 2]));
        assert_eq!(factor_23(12), Some(vec![3, 2, 2]));
        assert_eq!(factor_23(5), None);
        assert_eq!(factor_23(7), None);
    }

    #[test]
    fn reference_fold_matches_manual_over() {
        let mut a = RgbaImage::transparent(1, 1);
        a.pixels[0] = [0.5, 0.0, 0.0, 0.5];
        let mut b = RgbaImage::transparent(1, 1);
        b.pixels[0] = [0.0, 0.5, 0.0, 0.5];
        let out = composite_reference(&[a.clone(), b.clone()]);
        assert_eq!(out.pixels[0], over(a.pixels[0], b.pixels[0]));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn binary_swap_rejects_non_power_of_two() {
        let mut comms = crate::comm::InProcComm::create(3);
        let img = RgbaImage::transparent(2, 2);
        binary_swap(&mut comms[0], img);
    }
}
