//! Visibility ordering: swap compositing requires rank order to equal
//! front-to-back order, so layers are permuted by depth before the
//! exchange. For convex, non-overlapping bricks (the z-slab decomposition)
//! sorting by brick-center distance to the eye yields a correct ordering.

use vizsched_render::Layer;

/// Indices of `layers` sorted front-most (smallest depth) first, ties
/// broken by index for determinism.
pub fn visibility_order(layers: &[Layer]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..layers.len()).collect();
    order.sort_by(|&a, &b| {
        layers[a]
            .depth
            .partial_cmp(&layers[b].depth)
            .expect("finite depths")
            .then(a.cmp(&b))
    });
    order
}

/// Reorder layers front-to-back, consuming the input.
pub fn sort_by_visibility(mut layers: Vec<Layer>) -> Vec<Layer> {
    layers.sort_by(|a, b| a.depth.partial_cmp(&b.depth).expect("finite depths"));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizsched_render::RgbaImage;

    fn layer(depth: f32) -> Layer {
        Layer {
            image: RgbaImage::transparent(1, 1),
            depth,
        }
    }

    #[test]
    fn orders_front_first() {
        let layers = vec![layer(5.0), layer(1.0), layer(3.0)];
        assert_eq!(visibility_order(&layers), vec![1, 2, 0]);
        let sorted = sort_by_visibility(layers);
        assert_eq!(sorted[0].depth, 1.0);
        assert_eq!(sorted[2].depth, 5.0);
    }

    #[test]
    fn ties_break_by_index() {
        let layers = vec![layer(2.0), layer(2.0), layer(1.0)];
        assert_eq!(visibility_order(&layers), vec![2, 0, 1]);
    }
}
