//! # vizsched-metrics
//!
//! Result records and aggregation for vizsched experiments: job records,
//! per-action frame rates (Definition 4), latency summaries, data-reuse hit
//! rates, and wall-clock scheduling costs — the quantities behind every
//! figure and table in the paper's evaluation.
//!
//! The [`trace`] module adds the observability layer: a [`Probe`] receives
//! structured [`TraceEvent`]s from an execution substrate (scheduling
//! cycles, assignments with their predictions, completions with observed
//! reality, §V-B table corrections), and derived reports turn the stream
//! into prediction-accuracy summaries and per-node activity timelines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bars;
pub mod record;
pub mod report;
pub mod stats;
pub mod timeline;
pub mod trace;

pub use bars::{bar_chart, format_figure};
pub use record::{JobRecord, RunRecord};
pub use report::{
    format_comparison, format_table3_block, jain_index, reports_to_csv, SchedulerReport,
};
pub use stats::Summary;
pub use timeline::{Timeline, TimelinePoint};
pub use trace::{
    estimate_trajectory, events_to_jsonl, format_node_activity, format_prediction_report,
    node_activity, prediction_by_cycle, recovery_report, CollectingProbe, CyclePrediction,
    DropReason, EstimatePoint, FaultRecovery, InjectedFault, JsonlProbe, NodeActivity, NoopProbe,
    Probe, RecoveryReport, RejectReason, TraceEvent,
};
