//! # vizsched-metrics
//!
//! Result records and aggregation for vizsched experiments: job records,
//! per-action frame rates (Definition 4), latency summaries, data-reuse hit
//! rates, and wall-clock scheduling costs — the quantities behind every
//! figure and table in the paper's evaluation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bars;
pub mod record;
pub mod report;
pub mod stats;
pub mod timeline;

pub use bars::{bar_chart, format_figure};
pub use record::{JobRecord, RunRecord};
pub use report::{format_comparison, format_table3_block, jain_index, reports_to_csv, SchedulerReport};
pub use stats::Summary;
pub use timeline::{Timeline, TimelinePoint};
