//! Scheduler observability: structured trace events, the [`Probe`] sink
//! trait, and derived prediction-accuracy reports.
//!
//! The paper's scheduler is built on *predictions* — the head node's
//! `Available[R_k]` and `Estimate[c]` tables forecast when a node frees up
//! and how long a chunk load takes — and on *run-time correction* (§V-B)
//! when completions contradict those forecasts. This module makes that
//! feedback loop observable: the execution substrates (the discrete-event
//! simulator and the live service) emit a [`TraceEvent`] at every
//! scheduling decision, completion, and table correction, and the reports
//! here turn the stream into per-cycle prediction-error summaries, an
//! `Estimate[c]` convergence trajectory, and per-node activity timelines.
//!
//! A probe is deliberately passive: it receives shared references on hot
//! paths, so implementations should do at most an append or a buffered
//! write. The default [`NoopProbe`] reports [`Probe::enabled`] ` = false`,
//! letting emitters skip event construction entirely — tracing costs
//! nothing unless a run opts in.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::Mutex;
use vizsched_core::ids::{ChunkId, JobId, NodeId, ShardId};
use vizsched_core::job::Job;
use vizsched_core::time::{SimDuration, SimTime};

/// Why an arriving job was refused admission (the overload-control layer's
/// reject verdicts; see `OverloadPolicy` in `vizsched-runtime`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectReason {
    /// The global in-flight cap was reached.
    GlobalCap,
    /// The submitting user's per-user in-flight cap was reached.
    UserCap,
    /// The bounded admission queue in front of the head node was full
    /// (emitted by transport fronts, never by the head runtime itself).
    QueueFull,
    /// The control plane is in degraded mode under sustained fault
    /// pressure: new batch work is shed to protect interactive latency.
    Degraded,
}

impl RejectReason {
    /// Stable lowercase label, as written to JSONL traces.
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::GlobalCap => "global_cap",
            RejectReason::UserCap => "user_cap",
            RejectReason::QueueFull => "queue_full",
            RejectReason::Degraded => "degraded",
        }
    }

    /// Stable wire code (inverse of [`RejectReason::from_code`]).
    pub fn code(self) -> u8 {
        match self {
            RejectReason::GlobalCap => 0,
            RejectReason::UserCap => 1,
            RejectReason::QueueFull => 2,
            RejectReason::Degraded => 3,
        }
    }

    /// Decode a wire code produced by [`RejectReason::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(RejectReason::GlobalCap),
            1 => Some(RejectReason::UserCap),
            2 => Some(RejectReason::QueueFull),
            3 => Some(RejectReason::Degraded),
            _ => None,
        }
    }
}

/// The kind of a deterministically injected fault (the `FaultPlan`
/// taxonomy in `vizsched-runtime::fault`), as recorded by
/// [`TraceEvent::FaultInjected`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectedFault {
    /// A node crashed (queue and cache lost).
    NodeCrash,
    /// A crashed node rejoined, cold-cached.
    NodeRespawn,
    /// A node entered a slow/degraded state (execution multiplier).
    NodeDegrade,
    /// A degraded node returned to full speed.
    NodeRestore,
    /// A correlated outage took down a whole leaf group of nodes.
    LeafOutage,
    /// A leaf group's nodes all rejoined.
    LeafRecover,
    /// A shard head's cycle loop died.
    ShardCrash,
}

impl InjectedFault {
    /// Stable lowercase label, as written to JSONL traces.
    pub fn as_str(self) -> &'static str {
        match self {
            InjectedFault::NodeCrash => "node_crash",
            InjectedFault::NodeRespawn => "node_respawn",
            InjectedFault::NodeDegrade => "node_degrade",
            InjectedFault::NodeRestore => "node_restore",
            InjectedFault::LeafOutage => "leaf_outage",
            InjectedFault::LeafRecover => "leaf_recover",
            InjectedFault::ShardCrash => "shard_crash",
        }
    }
}

/// Why an admitted-but-unscheduled job was dropped before reaching a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// The job sat in the admission buffer past its deadline.
    DeadlineExpired,
    /// A newer frame from the same interactive action superseded it
    /// (stale-frame coalescing).
    Superseded,
}

impl DropReason {
    /// Stable lowercase label, as written to JSONL traces.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::DeadlineExpired => "deadline_expired",
            DropReason::Superseded => "superseded",
        }
    }

    /// Stable wire code (inverse of [`DropReason::from_code`]).
    pub fn code(self) -> u8 {
        match self {
            DropReason::DeadlineExpired => 0,
            DropReason::Superseded => 1,
        }
    }

    /// Decode a wire code produced by [`DropReason::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(DropReason::DeadlineExpired),
            1 => Some(DropReason::Superseded),
            _ => None,
        }
    }
}

/// One observable moment in a scheduling run.
///
/// Every variant carries `now` — virtual time in the simulator, elapsed
/// wall time in the live service. Variants map one-to-one onto the JSONL
/// records written by [`JsonlProbe`] (see the `t` field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A scheduler invocation began (`t = "cycle_start"`). Cycle-triggered
    /// policies emit one per cycle `ω`; arrival-triggered policies one per
    /// arriving job.
    CycleStart {
        /// Invocation time.
        now: SimTime,
        /// Jobs handed to the scheduler this invocation.
        queued: usize,
    },
    /// The matching end of a scheduler invocation (`t = "cycle_end"`).
    CycleEnd {
        /// Invocation time (the cycle's virtual timestamp, not its end).
        now: SimTime,
        /// Assignments the scheduler produced.
        assignments: usize,
        /// Host wall-clock time spent inside `schedule`, microseconds —
        /// the per-invocation basis of Table III's "avg. cost".
        wall_micros: u64,
    },
    /// A task was pinned to a node (`t = "assign"`), with the predictions
    /// the placement was based on.
    Assignment {
        /// Decision time.
        now: SimTime,
        /// Owning job.
        job: JobId,
        /// Task index within the job.
        task: u32,
        /// The chunk the task renders.
        chunk: ChunkId,
        /// The chosen node.
        node: NodeId,
        /// Predicted start (from `Available[R_k]` at commit time).
        predicted_start: SimTime,
        /// Predicted execution time (I/O estimate + render + composite).
        predicted_exec: SimDuration,
        /// Whether the owning job is interactive.
        interactive: bool,
    },
    /// A task finished on its node (`t = "task_done"`), with the observed
    /// reality to hold against the matching [`TraceEvent::Assignment`].
    TaskDone {
        /// Completion time.
        now: SimTime,
        /// Owning job.
        job: JobId,
        /// Task index within the job.
        task: u32,
        /// The chunk rendered.
        chunk: ChunkId,
        /// The node that executed it.
        node: NodeId,
        /// Observed start time.
        started: SimTime,
        /// Observed execution time.
        exec: SimDuration,
        /// Measured disk I/O portion (zero on a cache hit).
        io: SimDuration,
        /// True if the chunk was fetched from disk.
        miss: bool,
    },
    /// `Estimate[c]` was corrected from a measured load (`t = "estimate"`).
    EstimateCorrection {
        /// Correction time.
        now: SimTime,
        /// The chunk whose estimate changed.
        chunk: ChunkId,
        /// The estimate used for predictions up to now.
        old: SimDuration,
        /// The measured replacement.
        new: SimDuration,
    },
    /// `Available[R_k]` was recomputed from a node's real backlog
    /// (`t = "available"`).
    AvailableCorrection {
        /// Correction time.
        now: SimTime,
        /// The node whose availability was corrected.
        node: NodeId,
        /// The optimistic prediction being replaced.
        old: SimTime,
        /// The recomputed availability.
        new: SimTime,
    },
    /// A node loaded a chunk into its cache (`t = "cache_load"`), as
    /// reconciled into the head's `Cache` table.
    CacheLoad {
        /// Reconciliation time.
        now: SimTime,
        /// The loading node.
        node: NodeId,
        /// The chunk now resident.
        chunk: ChunkId,
    },
    /// A node evicted a chunk (`t = "cache_evict"`).
    CacheEvict {
        /// Reconciliation time.
        now: SimTime,
        /// The evicting node.
        node: NodeId,
        /// The chunk dropped.
        chunk: ChunkId,
    },
    /// A node faulted — crash or channel disconnect (`t = "node_fault"`).
    NodeFault {
        /// Fault time.
        now: SimTime,
        /// The failed node.
        node: NodeId,
        /// Queued or running tasks lost and re-placed elsewhere.
        lost_tasks: usize,
    },
    /// A crashed node rejoined, cold-cached (`t = "node_up"`).
    NodeUp {
        /// Recovery time.
        now: SimTime,
        /// The recovered node.
        node: NodeId,
    },
    /// Every task of a job has completed (`t = "job_done"`).
    JobDone {
        /// Completion time of the job's last task.
        now: SimTime,
        /// The finished job.
        job: JobId,
        /// Issue-to-finish latency (Definition 3).
        latency: SimDuration,
    },
    /// The overload policy admitted an arriving job (`t = "admitted"`).
    /// Emitted only when an `OverloadPolicy` is active.
    Admitted {
        /// Arrival time.
        now: SimTime,
        /// The admitted job.
        job: JobId,
        /// Jobs buffered for the next scheduler invocation *after* this
        /// admission (cycle-triggered policies; zero when the scheduler
        /// runs on arrival).
        queue_depth: usize,
    },
    /// The overload policy refused an arriving job (`t = "rejected"`);
    /// the job never reaches the scheduler.
    Rejected {
        /// Arrival time.
        now: SimTime,
        /// The refused job.
        job: JobId,
        /// Which cap refused it.
        reason: RejectReason,
    },
    /// A buffered interactive frame was superseded by a newer frame from
    /// the same `(user, action)` before it was ever scheduled
    /// (`t = "coalesced"`).
    Coalesced {
        /// Arrival time of the newer frame.
        now: SimTime,
        /// The stale frame that was dropped.
        superseded: JobId,
        /// The newer frame that replaced it.
        by: JobId,
    },
    /// A buffered job sat past its admission deadline and was dropped at
    /// the next cycle boundary (`t = "expired"`).
    Expired {
        /// The cycle time at which the drop happened.
        now: SimTime,
        /// The dropped job.
        job: JobId,
        /// How long it had been buffered.
        waited: SimDuration,
    },
    /// A deferred batch task's deferral age crossed the anti-starvation
    /// bound and the job was escalated into the interactive scheduling
    /// pass (`t = "batch_escalated"`).
    BatchEscalated {
        /// The cycle time at which the escalation happened.
        now: SimTime,
        /// The escalated batch job.
        job: JobId,
        /// How long its oldest task had been deferred.
        waited: SimDuration,
    },
    /// The routing tier pinned an arriving job to a shard
    /// (`t = "shard_assigned"`). Emitted only on sharded runs, before the
    /// shard's own admission events.
    ShardAssigned {
        /// Arrival time.
        now: SimTime,
        /// The routed job.
        job: JobId,
        /// The shard whose cycle loop now owns it.
        shard: ShardId,
    },
    /// A buffered batch job was migrated off a saturated shard
    /// (`t = "shard_migrated"`). Interactive jobs never migrate — their
    /// users stay pinned for `Cache[c]` locality.
    ShardMigrated {
        /// Migration time (a cycle boundary on the saturated shard).
        now: SimTime,
        /// The migrated batch job.
        job: JobId,
        /// The shard it left.
        from: ShardId,
        /// The shard that stole it.
        to: ShardId,
    },
    /// A shard's buffered backlog crossed the saturation threshold
    /// (`t = "shard_saturated"`), making its batch jobs eligible for
    /// migration at the next routing decision.
    ShardSaturated {
        /// Detection time (a cycle boundary on the shard).
        now: SimTime,
        /// The saturated shard.
        shard: ShardId,
        /// Jobs buffered on the shard at detection.
        queued: usize,
    },
    /// The adaptive multi-objective policy (MOBJ-A) retuned its placement
    /// weights from completion feedback (`t = "weights_updated"`). All
    /// weights are per-mille; the sum is preserved across retunes.
    WeightsUpdated {
        /// Retune time (the cycle at which the policy events drained).
        now: SimTime,
        /// New cache-locality weight.
        locality_pm: u32,
        /// New load-balance weight.
        balance_pm: u32,
        /// New fragmentation weight.
        fragmentation_pm: u32,
        /// New starvation-age weight.
        starvation_pm: u32,
    },
    /// The fractional policy (FRAC) adjusted a node's interactive share
    /// (`t = "share_adjusted"`). The batch window of the node is
    /// `ω · (1000 − interactive_pm) / 1000` for the following cycles.
    ShareAdjusted {
        /// Adjustment time (the cycle the share EMA stepped).
        now: SimTime,
        /// The node whose share moved.
        node: NodeId,
        /// The new interactive share, per-mille of the cycle.
        interactive_pm: u32,
    },
    /// A scheduled fault from the deterministic `FaultPlan` fired
    /// (`t = "fault_injected"`). Emitted by the executing substrate at the
    /// moment the fault takes effect, before the recovery events it
    /// triggers.
    FaultInjected {
        /// Injection time (the plan's scheduled time, substrate clock).
        now: SimTime,
        /// The fault's taxonomy kind.
        kind: InjectedFault,
        /// The target id: a global node id, the base node of a leaf
        /// group, or a shard id, per `kind`.
        target: u32,
        /// The kind-specific parameter: leaf-group node count for
        /// `leaf_outage`/`leaf_recover`, slowdown per-mille for
        /// `node_degrade`, zero otherwise.
        param: u32,
    },
    /// A shard head's cycle loop died (`t = "shard_failed"`). Its node
    /// slice, buffered jobs, and in-flight work are orphaned until the
    /// routing tier rebalances them onto survivors.
    ShardFailed {
        /// Detection time.
        now: SimTime,
        /// The dead shard.
        shard: ShardId,
        /// Admitted jobs orphaned on the dead head (buffered plus
        /// in-flight), all of which must be re-admitted exactly once.
        orphaned: usize,
    },
    /// Failover completed for a dead shard (`t = "shard_recovered"`):
    /// its node slice was adopted by survivors via the minimal-disruption
    /// ring rebalance and every orphaned job was re-admitted.
    ShardRecovered {
        /// Completion time of the failover.
        now: SimTime,
        /// The shard whose slice was rebalanced away.
        shard: ShardId,
        /// Nodes adopted by surviving shards.
        adopted: usize,
    },
    /// Sustained fault pressure crossed the degraded-mode enter threshold
    /// (`t = "degraded_entered"`): new batch arrivals are shed with
    /// `reason = "degraded"` until pressure decays below the exit
    /// threshold (hysteresis).
    DegradedEntered {
        /// Entry time.
        now: SimTime,
        /// The fault-pressure score at entry.
        pressure: u32,
    },
    /// Fault pressure decayed below the exit threshold
    /// (`t = "degraded_exited"`): batch admission resumes.
    DegradedExited {
        /// Exit time.
        now: SimTime,
        /// The fault-pressure score at exit.
        pressure: u32,
    },
}

impl TraceEvent {
    /// Every `t` tag a [`TraceEvent`] can serialize to, in declaration
    /// order. The docs-consistency test checks each of these appears in
    /// DESIGN.md's trace-schema table.
    pub const TAGS: [&'static str; 26] = [
        "cycle_start",
        "cycle_end",
        "assign",
        "task_done",
        "estimate",
        "available",
        "cache_load",
        "cache_evict",
        "node_fault",
        "node_up",
        "job_done",
        "admitted",
        "rejected",
        "coalesced",
        "expired",
        "batch_escalated",
        "shard_assigned",
        "shard_migrated",
        "shard_saturated",
        "weights_updated",
        "share_adjusted",
        "fault_injected",
        "shard_failed",
        "shard_recovered",
        "degraded_entered",
        "degraded_exited",
    ];

    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::CycleStart { now, .. }
            | TraceEvent::CycleEnd { now, .. }
            | TraceEvent::Assignment { now, .. }
            | TraceEvent::TaskDone { now, .. }
            | TraceEvent::EstimateCorrection { now, .. }
            | TraceEvent::AvailableCorrection { now, .. }
            | TraceEvent::CacheLoad { now, .. }
            | TraceEvent::CacheEvict { now, .. }
            | TraceEvent::NodeFault { now, .. }
            | TraceEvent::NodeUp { now, .. }
            | TraceEvent::JobDone { now, .. }
            | TraceEvent::Admitted { now, .. }
            | TraceEvent::Rejected { now, .. }
            | TraceEvent::Coalesced { now, .. }
            | TraceEvent::Expired { now, .. }
            | TraceEvent::BatchEscalated { now, .. }
            | TraceEvent::ShardAssigned { now, .. }
            | TraceEvent::ShardMigrated { now, .. }
            | TraceEvent::ShardSaturated { now, .. }
            | TraceEvent::WeightsUpdated { now, .. }
            | TraceEvent::ShareAdjusted { now, .. }
            | TraceEvent::FaultInjected { now, .. }
            | TraceEvent::ShardFailed { now, .. }
            | TraceEvent::ShardRecovered { now, .. }
            | TraceEvent::DegradedEntered { now, .. }
            | TraceEvent::DegradedExited { now, .. } => now,
        }
    }

    /// The `t` tag this event serializes under (one of [`TraceEvent::TAGS`]).
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::CycleStart { .. } => "cycle_start",
            TraceEvent::CycleEnd { .. } => "cycle_end",
            TraceEvent::Assignment { .. } => "assign",
            TraceEvent::TaskDone { .. } => "task_done",
            TraceEvent::EstimateCorrection { .. } => "estimate",
            TraceEvent::AvailableCorrection { .. } => "available",
            TraceEvent::CacheLoad { .. } => "cache_load",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::NodeFault { .. } => "node_fault",
            TraceEvent::NodeUp { .. } => "node_up",
            TraceEvent::JobDone { .. } => "job_done",
            TraceEvent::Admitted { .. } => "admitted",
            TraceEvent::Rejected { .. } => "rejected",
            TraceEvent::Coalesced { .. } => "coalesced",
            TraceEvent::Expired { .. } => "expired",
            TraceEvent::BatchEscalated { .. } => "batch_escalated",
            TraceEvent::ShardAssigned { .. } => "shard_assigned",
            TraceEvent::ShardMigrated { .. } => "shard_migrated",
            TraceEvent::ShardSaturated { .. } => "shard_saturated",
            TraceEvent::WeightsUpdated { .. } => "weights_updated",
            TraceEvent::ShareAdjusted { .. } => "share_adjusted",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::ShardFailed { .. } => "shard_failed",
            TraceEvent::ShardRecovered { .. } => "shard_recovered",
            TraceEvent::DegradedEntered { .. } => "degraded_entered",
            TraceEvent::DegradedExited { .. } => "degraded_exited",
        }
    }

    /// Render as one JSON object (no trailing newline). Times are integer
    /// microseconds (`*_us`); ids are raw integers, chunks as
    /// `{"dataset": d, "index": i}`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        self.write_json(&mut s);
        s
    }

    fn write_json(&self, s: &mut String) {
        // Hand-rolled: every field is an integer, bool, or a static
        // lowercase label, so escaping never arises.
        let chunk_json = |s: &mut String, c: ChunkId| {
            let _ = write!(s, "{{\"dataset\":{},\"index\":{}}}", c.dataset.0, c.index);
        };
        match *self {
            TraceEvent::CycleStart { now, queued } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"cycle_start\",\"now_us\":{},\"queued\":{queued}}}",
                    now.as_micros()
                );
            }
            TraceEvent::CycleEnd {
                now,
                assignments,
                wall_micros,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"cycle_end\",\"now_us\":{},\"assignments\":{assignments},\
                     \"wall_us\":{wall_micros}}}",
                    now.as_micros()
                );
            }
            TraceEvent::Assignment {
                now,
                job,
                task,
                chunk,
                node,
                predicted_start,
                predicted_exec,
                interactive,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"assign\",\"now_us\":{},\"job\":{},\"task\":{task},\"chunk\":",
                    now.as_micros(),
                    job.0
                );
                chunk_json(s, chunk);
                let _ = write!(
                    s,
                    ",\"node\":{},\"predicted_start_us\":{},\"predicted_exec_us\":{},\
                     \"interactive\":{interactive}}}",
                    node.0,
                    predicted_start.as_micros(),
                    predicted_exec.as_micros()
                );
            }
            TraceEvent::TaskDone {
                now,
                job,
                task,
                chunk,
                node,
                started,
                exec,
                io,
                miss,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"task_done\",\"now_us\":{},\"job\":{},\"task\":{task},\"chunk\":",
                    now.as_micros(),
                    job.0
                );
                chunk_json(s, chunk);
                let _ = write!(
                    s,
                    ",\"node\":{},\"started_us\":{},\"exec_us\":{},\"io_us\":{},\"miss\":{miss}}}",
                    node.0,
                    started.as_micros(),
                    exec.as_micros(),
                    io.as_micros()
                );
            }
            TraceEvent::EstimateCorrection {
                now,
                chunk,
                old,
                new,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"estimate\",\"now_us\":{},\"chunk\":",
                    now.as_micros()
                );
                chunk_json(s, chunk);
                let _ = write!(
                    s,
                    ",\"old_us\":{},\"new_us\":{}}}",
                    old.as_micros(),
                    new.as_micros()
                );
            }
            TraceEvent::AvailableCorrection {
                now,
                node,
                old,
                new,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"available\",\"now_us\":{},\"node\":{},\"old_us\":{},\
                     \"new_us\":{}}}",
                    now.as_micros(),
                    node.0,
                    old.as_micros(),
                    new.as_micros()
                );
            }
            TraceEvent::CacheLoad { now, node, chunk } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"cache_load\",\"now_us\":{},\"node\":{},\"chunk\":",
                    now.as_micros(),
                    node.0
                );
                chunk_json(s, chunk);
                s.push('}');
            }
            TraceEvent::CacheEvict { now, node, chunk } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"cache_evict\",\"now_us\":{},\"node\":{},\"chunk\":",
                    now.as_micros(),
                    node.0
                );
                chunk_json(s, chunk);
                s.push('}');
            }
            TraceEvent::NodeFault {
                now,
                node,
                lost_tasks,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"node_fault\",\"now_us\":{},\"node\":{},\"lost\":{lost_tasks}}}",
                    now.as_micros(),
                    node.0
                );
            }
            TraceEvent::NodeUp { now, node } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"node_up\",\"now_us\":{},\"node\":{}}}",
                    now.as_micros(),
                    node.0
                );
            }
            TraceEvent::JobDone { now, job, latency } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"job_done\",\"now_us\":{},\"job\":{},\"latency_us\":{}}}",
                    now.as_micros(),
                    job.0,
                    latency.as_micros()
                );
            }
            TraceEvent::Admitted {
                now,
                job,
                queue_depth,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"admitted\",\"now_us\":{},\"job\":{},\"queue_depth\":{queue_depth}}}",
                    now.as_micros(),
                    job.0
                );
            }
            TraceEvent::Rejected { now, job, reason } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"rejected\",\"now_us\":{},\"job\":{},\"reason\":\"{}\"}}",
                    now.as_micros(),
                    job.0,
                    reason.as_str()
                );
            }
            TraceEvent::Coalesced {
                now,
                superseded,
                by,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"coalesced\",\"now_us\":{},\"superseded\":{},\"by\":{}}}",
                    now.as_micros(),
                    superseded.0,
                    by.0
                );
            }
            TraceEvent::Expired { now, job, waited } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"expired\",\"now_us\":{},\"job\":{},\"waited_us\":{}}}",
                    now.as_micros(),
                    job.0,
                    waited.as_micros()
                );
            }
            TraceEvent::BatchEscalated { now, job, waited } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"batch_escalated\",\"now_us\":{},\"job\":{},\"waited_us\":{}}}",
                    now.as_micros(),
                    job.0,
                    waited.as_micros()
                );
            }
            TraceEvent::ShardAssigned { now, job, shard } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"shard_assigned\",\"now_us\":{},\"job\":{},\"shard\":{}}}",
                    now.as_micros(),
                    job.0,
                    shard.0
                );
            }
            TraceEvent::ShardMigrated { now, job, from, to } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"shard_migrated\",\"now_us\":{},\"job\":{},\"from\":{},\"to\":{}}}",
                    now.as_micros(),
                    job.0,
                    from.0,
                    to.0
                );
            }
            TraceEvent::ShardSaturated { now, shard, queued } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"shard_saturated\",\"now_us\":{},\"shard\":{},\"queued\":{queued}}}",
                    now.as_micros(),
                    shard.0
                );
            }
            TraceEvent::WeightsUpdated {
                now,
                locality_pm,
                balance_pm,
                fragmentation_pm,
                starvation_pm,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"weights_updated\",\"now_us\":{},\"locality_pm\":{locality_pm},\
                     \"balance_pm\":{balance_pm},\"fragmentation_pm\":{fragmentation_pm},\
                     \"starvation_pm\":{starvation_pm}}}",
                    now.as_micros()
                );
            }
            TraceEvent::ShareAdjusted {
                now,
                node,
                interactive_pm,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"share_adjusted\",\"now_us\":{},\"node\":{},\
                     \"interactive_pm\":{interactive_pm}}}",
                    now.as_micros(),
                    node.0
                );
            }
            TraceEvent::FaultInjected {
                now,
                kind,
                target,
                param,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"fault_injected\",\"now_us\":{},\"kind\":\"{}\",\
                     \"target\":{target},\"param\":{param}}}",
                    now.as_micros(),
                    kind.as_str()
                );
            }
            TraceEvent::ShardFailed {
                now,
                shard,
                orphaned,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"shard_failed\",\"now_us\":{},\"shard\":{},\
                     \"orphaned\":{orphaned}}}",
                    now.as_micros(),
                    shard.0
                );
            }
            TraceEvent::ShardRecovered {
                now,
                shard,
                adopted,
            } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"shard_recovered\",\"now_us\":{},\"shard\":{},\
                     \"adopted\":{adopted}}}",
                    now.as_micros(),
                    shard.0
                );
            }
            TraceEvent::DegradedEntered { now, pressure } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"degraded_entered\",\"now_us\":{},\"pressure\":{pressure}}}",
                    now.as_micros()
                );
            }
            TraceEvent::DegradedExited { now, pressure } => {
                let _ = write!(
                    s,
                    "{{\"t\":\"degraded_exited\",\"now_us\":{},\"pressure\":{pressure}}}",
                    now.as_micros()
                );
            }
        }
    }
}

/// A sink for [`TraceEvent`]s.
///
/// Probes are shared across threads (the live service's head loop runs on
/// its own thread), so implementations take `&self` and must be
/// `Send + Sync`. Emitters check [`Probe::enabled`] before constructing an
/// event, so a disabled probe costs one virtual call per site.
pub trait Probe: Send + Sync {
    /// Whether this probe wants events at all. Emitters skip event
    /// construction when this is false.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event. Called on hot paths; keep it cheap.
    fn on_event(&self, event: &TraceEvent);

    /// Observe one job at the instant the head node first sees it —
    /// before admission control, so rejected and coalesced jobs are
    /// observed too. Both substrates call this exactly once per offered
    /// job (internal re-admissions during shard migration or failover do
    /// *not* re-fire it), which is what lets a recording probe capture a
    /// replayable request stream. The default does nothing, so only
    /// recorders pay for it.
    fn on_job_offered(&self, _now: SimTime, _job: &Job) {}
}

/// The default probe: receives nothing, reports disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    fn enabled(&self) -> bool {
        false
    }

    fn on_event(&self, _event: &TraceEvent) {}
}

/// A probe that buffers every event in memory, for tests and post-run
/// analysis.
#[derive(Debug, Default)]
pub struct CollectingProbe {
    events: Mutex<Vec<TraceEvent>>,
}

impl CollectingProbe {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy out everything collected so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("probe lock").clone()
    }

    /// Drain the buffer, returning everything collected so far.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("probe lock"))
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("probe lock").len()
    }

    /// True if nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Probe for CollectingProbe {
    fn on_event(&self, event: &TraceEvent) {
        self.events.lock().expect("probe lock").push(*event);
    }
}

/// A probe that writes each event as one JSON line to a writer.
///
/// Wrap the writer in a `BufWriter` for file output; the stream is flushed
/// when the probe drops. Write errors are counted, not propagated — a
/// tracing sink must never abort a run.
#[derive(Debug)]
pub struct JsonlProbe<W: Write + Send> {
    out: Mutex<W>,
    errors: std::sync::atomic::AtomicU64,
}

impl<W: Write + Send> JsonlProbe<W> {
    /// Trace into `out`, one JSON object per line.
    pub fn new(out: W) -> Self {
        JsonlProbe {
            out: Mutex::new(out),
            errors: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of events dropped to write errors.
    pub fn write_errors(&self) -> u64 {
        self.errors.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl JsonlProbe<std::io::BufWriter<std::fs::File>> {
    /// Trace into a freshly created (truncated) file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write + Send> Probe for JsonlProbe<W> {
    fn on_event(&self, event: &TraceEvent) {
        let mut line = event.to_json();
        line.push('\n');
        let mut out = self.out.lock().expect("probe lock");
        if out.write_all(line.as_bytes()).is_err() {
            self.errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl<W: Write + Send> Drop for JsonlProbe<W> {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Serialize a whole event slice as JSONL (the batch counterpart of
/// [`JsonlProbe`], for use with [`CollectingProbe::take`]).
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 128);
    for event in events {
        event.write_json(&mut out);
        out.push('\n');
    }
    out
}

/// Prediction accuracy of one scheduler invocation, from matching each of
/// its [`TraceEvent::Assignment`]s against the task's eventual
/// [`TraceEvent::TaskDone`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CyclePrediction {
    /// Invocation index, 0-based in emission order.
    pub cycle: u64,
    /// Invocation time.
    pub start: SimTime,
    /// Tasks assigned in this invocation.
    pub assigned: usize,
    /// Of those, tasks whose completion was observed in the trace.
    pub completed: usize,
    /// Mean `|observed start − predicted start|` over completed tasks.
    pub mean_start_error: SimDuration,
    /// Mean `|observed exec − predicted exec|` over completed tasks.
    pub mean_exec_error: SimDuration,
}

/// Join assignments to completions and aggregate prediction error per
/// scheduler invocation ("cycle"). Invocations that assigned nothing are
/// omitted; tasks re-placed after a crash resolve to their latest
/// assignment.
pub fn prediction_by_cycle(events: &[TraceEvent]) -> Vec<CyclePrediction> {
    use std::collections::HashMap;
    struct Bucket {
        summary: CyclePrediction,
        start_err_us: u64,
        exec_err_us: u64,
    }
    let mut cycles: Vec<Bucket> = Vec::new();
    let mut current: Option<usize> = None;
    // (job, task) -> (cycle index, predicted start, predicted exec)
    let mut open: HashMap<(JobId, u32), (usize, SimTime, SimDuration)> = HashMap::new();
    for event in events {
        match *event {
            TraceEvent::CycleStart { now, .. } => {
                current = Some(cycles.len());
                cycles.push(Bucket {
                    summary: CyclePrediction {
                        cycle: cycles.len() as u64,
                        start: now,
                        ..CyclePrediction::default()
                    },
                    start_err_us: 0,
                    exec_err_us: 0,
                });
            }
            TraceEvent::Assignment {
                job,
                task,
                predicted_start,
                predicted_exec,
                ..
            } => {
                // Crash re-placements happen outside any invocation; bill
                // them to the most recent one.
                let Some(cycle) = current else { continue };
                cycles[cycle].summary.assigned += 1;
                if let Some((old_cycle, _, _)) =
                    open.insert((job, task), (cycle, predicted_start, predicted_exec))
                {
                    // Superseded assignment (node crash): the earlier
                    // placement never completes.
                    cycles[old_cycle].summary.assigned -= 1;
                }
            }
            TraceEvent::TaskDone {
                job,
                task,
                started,
                exec,
                ..
            } => {
                let Some((cycle, predicted_start, predicted_exec)) = open.remove(&(job, task))
                else {
                    continue;
                };
                let b = &mut cycles[cycle];
                b.summary.completed += 1;
                b.start_err_us += abs_diff_us(started.as_micros(), predicted_start.as_micros());
                b.exec_err_us += abs_diff_us(exec.as_micros(), predicted_exec.as_micros());
            }
            _ => {}
        }
    }
    cycles
        .into_iter()
        .filter(|b| b.summary.assigned > 0)
        .map(|b| {
            let mut s = b.summary;
            if s.completed > 0 {
                s.mean_start_error = SimDuration::from_micros(b.start_err_us / s.completed as u64);
                s.mean_exec_error = SimDuration::from_micros(b.exec_err_us / s.completed as u64);
            }
            s
        })
        .collect()
}

fn abs_diff_us(a: u64, b: u64) -> u64 {
    a.abs_diff(b)
}

/// One `Estimate[c]` correction, as a point on the table's convergence
/// trajectory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EstimatePoint {
    /// Correction time.
    pub now: SimTime,
    /// The corrected chunk.
    pub chunk: ChunkId,
    /// `|old − new|`: how wrong the estimate the scheduler had been using
    /// was.
    pub error: SimDuration,
}

/// Extract the `Estimate[c]` correction trajectory: one point per
/// [`TraceEvent::EstimateCorrection`], in trace order. A healthy feedback
/// loop shows errors shrinking toward the jitter floor as measurements
/// replace initial estimates.
pub fn estimate_trajectory(events: &[TraceEvent]) -> Vec<EstimatePoint> {
    events
        .iter()
        .filter_map(|event| match *event {
            TraceEvent::EstimateCorrection {
                now,
                chunk,
                old,
                new,
            } => Some(EstimatePoint {
                now,
                chunk,
                error: SimDuration::from_micros(abs_diff_us(old.as_micros(), new.as_micros())),
            }),
            _ => None,
        })
        .collect()
}

/// Per-node activity over a traced run, from observed task executions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeActivity {
    /// The node.
    pub node: NodeId,
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks that fetched from disk.
    pub misses: u64,
    /// Total observed execution time.
    pub busy: SimDuration,
    /// `horizon − busy`.
    pub idle: SimDuration,
    /// Longest contiguous gap with no task executing — the starvation
    /// indicator (a node the scheduler never feeds shows up here long
    /// before utilization averages reveal it).
    pub longest_idle: SimDuration,
    /// Busy fraction of the horizon, 0–1.
    pub utilization: f64,
}

/// Build per-node busy/idle/starvation timelines for `nodes` nodes over
/// `[0, horizon]` from the trace's [`TraceEvent::TaskDone`] events.
pub fn node_activity(events: &[TraceEvent], nodes: usize, horizon: SimTime) -> Vec<NodeActivity> {
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nodes];
    let mut misses = vec![0u64; nodes];
    for event in events {
        if let TraceEvent::TaskDone {
            node,
            started,
            now,
            miss,
            ..
        } = *event
        {
            if node.index() < nodes {
                intervals[node.index()].push((started.as_micros(), now.as_micros()));
                misses[node.index()] += u64::from(miss);
            }
        }
    }
    let span_us = horizon.as_micros();
    intervals
        .into_iter()
        .zip(misses)
        .enumerate()
        .map(|(k, (mut iv, misses))| {
            iv.sort_unstable();
            let mut busy = 0u64;
            let mut longest_idle = 0u64;
            let mut cursor = 0u64; // end of the last busy interval seen
            for &(start, end) in &iv {
                longest_idle = longest_idle.max(start.saturating_sub(cursor));
                busy += end.saturating_sub(start.max(cursor));
                cursor = cursor.max(end);
            }
            longest_idle = longest_idle.max(span_us.saturating_sub(cursor));
            let busy = busy.min(span_us);
            NodeActivity {
                node: NodeId(k as u32),
                tasks: iv.len() as u64,
                misses,
                busy: SimDuration::from_micros(busy),
                idle: SimDuration::from_micros(span_us - busy),
                longest_idle: SimDuration::from_micros(longest_idle),
                utilization: if span_us == 0 {
                    0.0
                } else {
                    busy as f64 / span_us as f64
                },
            }
        })
        .collect()
}

/// One injected fault with its observed recovery latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultRecovery {
    /// When the fault fired.
    pub at: SimTime,
    /// The fault's taxonomy kind.
    pub kind: InjectedFault,
    /// The fault's target id (node, leaf base, or shard, per `kind`).
    pub target: u32,
    /// Time from injection to the first subsequent [`TraceEvent::JobDone`]
    /// — the service's observable time-to-recovery. `None` if no job ever
    /// completed after the fault.
    pub mttr: Option<SimDuration>,
    /// For `shard_crash` faults: time from injection to the first
    /// *interactive* job completion after it (the latency a pinned user
    /// observed). `None` otherwise or if none completed.
    pub interactive_mttr: Option<SimDuration>,
}

/// Aggregate recovery metrics derived from a chaos trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Every injected fault, in trace order, with per-fault recovery.
    pub faults: Vec<FaultRecovery>,
    /// Frames lost to the fault response: rejected plus expired jobs.
    pub frames_lost: u64,
    /// Work rerouted by recovery: tasks lost to node faults plus jobs
    /// orphaned by shard failures (each re-placed elsewhere).
    pub jobs_rerouted: u64,
    /// Largest per-fault `mttr` observed.
    pub max_mttr: SimDuration,
    /// Mean per-fault `mttr` over faults that recovered.
    pub mean_mttr: SimDuration,
    /// Largest `interactive_mttr` over shard-crash faults.
    pub max_interactive_mttr: SimDuration,
}

/// Derive a [`RecoveryReport`] from a traced chaos run: MTTR per injected
/// fault (first job completion after it), frames lost to shedding and
/// deadline expiry, and the volume of rerouted work.
///
/// Interactivity of completed jobs is learned from the trace's
/// [`TraceEvent::Assignment`] events, so the report needs no side
/// channel beyond the event stream itself.
pub fn recovery_report(events: &[TraceEvent]) -> RecoveryReport {
    use std::collections::HashSet;
    let mut interactive_jobs: HashSet<u64> = HashSet::new();
    for e in events {
        if let TraceEvent::Assignment {
            job, interactive, ..
        } = e
        {
            if *interactive {
                interactive_jobs.insert(job.0);
            }
        }
    }
    let mut report = RecoveryReport::default();
    // Indexes into `report.faults` still waiting for a completion.
    let mut open: Vec<usize> = Vec::new();
    let mut open_interactive: Vec<usize> = Vec::new();
    for e in events {
        match *e {
            TraceEvent::FaultInjected {
                now, kind, target, ..
            } => {
                let idx = report.faults.len();
                report.faults.push(FaultRecovery {
                    at: now,
                    kind,
                    target,
                    mttr: None,
                    interactive_mttr: None,
                });
                open.push(idx);
                if kind == InjectedFault::ShardCrash {
                    open_interactive.push(idx);
                }
            }
            TraceEvent::JobDone { now, job, .. } => {
                for &idx in &open {
                    let f = &mut report.faults[idx];
                    f.mttr = Some(now.saturating_since(f.at));
                }
                open.clear();
                if interactive_jobs.contains(&job.0) {
                    for &idx in &open_interactive {
                        let f = &mut report.faults[idx];
                        f.interactive_mttr = Some(now.saturating_since(f.at));
                    }
                    open_interactive.clear();
                }
            }
            TraceEvent::Rejected { .. } | TraceEvent::Expired { .. } => {
                report.frames_lost += 1;
            }
            TraceEvent::NodeFault { lost_tasks, .. } => {
                report.jobs_rerouted += lost_tasks as u64;
            }
            TraceEvent::ShardFailed { orphaned, .. } => {
                report.jobs_rerouted += orphaned as u64;
            }
            _ => {}
        }
    }
    let recovered: Vec<SimDuration> = report.faults.iter().filter_map(|f| f.mttr).collect();
    if !recovered.is_empty() {
        report.max_mttr = recovered.iter().copied().max().unwrap_or(SimDuration::ZERO);
        let total: u64 = recovered.iter().map(|d| d.as_micros()).sum();
        report.mean_mttr = SimDuration::from_micros(total / recovered.len() as u64);
    }
    report.max_interactive_mttr = report
        .faults
        .iter()
        .filter_map(|f| f.interactive_mttr)
        .max()
        .unwrap_or(SimDuration::ZERO);
    report
}

/// Render per-cycle prediction errors as a small table. To keep long runs
/// readable the cycles are folded into at most `max_rows` row groups, each
/// averaging its cycles.
pub fn format_prediction_report(cycles: &[CyclePrediction], max_rows: usize) -> String {
    let mut out = format!(
        "{:>10} {:>10} {:>9} {:>9} {:>14} {:>14}\n",
        "cycles", "t", "assigned", "done", "start err avg", "exec err avg"
    );
    if cycles.is_empty() || max_rows == 0 {
        return out;
    }
    let group = cycles.len().div_ceil(max_rows);
    for rows in cycles.chunks(group) {
        let assigned: usize = rows.iter().map(|c| c.assigned).sum();
        let completed: usize = rows.iter().map(|c| c.completed).sum();
        let weighted = |f: fn(&CyclePrediction) -> SimDuration| {
            let total: u64 = rows
                .iter()
                .map(|c| f(c).as_micros() * c.completed as u64)
                .sum();
            if completed == 0 {
                SimDuration::ZERO
            } else {
                SimDuration::from_micros(total / completed as u64)
            }
        };
        let label = if rows.len() == 1 {
            format!("{}", rows[0].cycle)
        } else {
            format!("{}-{}", rows[0].cycle, rows[rows.len() - 1].cycle)
        };
        out.push_str(&format!(
            "{:>10} {:>10} {:>9} {:>9} {:>14} {:>14}\n",
            label,
            format!("{:.2}s", rows[0].start.as_secs_f64()),
            assigned,
            completed,
            format!("{:.3}ms", weighted(|c| c.mean_start_error).as_millis_f64()),
            format!("{:.3}ms", weighted(|c| c.mean_exec_error).as_millis_f64()),
        ));
    }
    out
}

/// Render per-node activity as a small table.
pub fn format_node_activity(activity: &[NodeActivity]) -> String {
    let mut out = format!(
        "{:>5} {:>8} {:>8} {:>10} {:>10} {:>12} {:>6}\n",
        "node", "tasks", "misses", "busy", "idle", "longest idle", "util"
    );
    for a in activity {
        out.push_str(&format!(
            "{:>5} {:>8} {:>8} {:>10} {:>10} {:>12} {:>5.1}%\n",
            a.node.to_string(),
            a.tasks,
            a.misses,
            format!("{:.2}s", a.busy.as_secs_f64()),
            format!("{:.2}s", a.idle.as_secs_f64()),
            format!("{:.2}s", a.longest_idle.as_secs_f64()),
            a.utilization * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vizsched_core::ids::DatasetId;

    fn chunk(i: u32) -> ChunkId {
        ChunkId::new(DatasetId(0), i)
    }

    fn assign(cycle_job: u64, task: u32, node: u32, start_ms: u64, exec_ms: u64) -> TraceEvent {
        TraceEvent::Assignment {
            now: SimTime::ZERO,
            job: JobId(cycle_job),
            task,
            chunk: chunk(task),
            node: NodeId(node),
            predicted_start: SimTime::from_millis(start_ms),
            predicted_exec: SimDuration::from_millis(exec_ms),
            interactive: true,
        }
    }

    fn done(job: u64, task: u32, node: u32, start_ms: u64, exec_ms: u64) -> TraceEvent {
        TraceEvent::TaskDone {
            now: SimTime::from_millis(start_ms + exec_ms),
            job: JobId(job),
            task,
            chunk: chunk(task),
            node: NodeId(node),
            started: SimTime::from_millis(start_ms),
            exec: SimDuration::from_millis(exec_ms),
            io: SimDuration::ZERO,
            miss: false,
        }
    }

    #[test]
    fn noop_probe_is_disabled() {
        let p = NoopProbe;
        assert!(!p.enabled());
        p.on_event(&TraceEvent::NodeUp {
            now: SimTime::ZERO,
            node: NodeId(0),
        });
    }

    #[test]
    fn collecting_probe_buffers_and_drains() {
        let p = Arc::new(CollectingProbe::new());
        assert!(p.is_empty());
        p.on_event(&TraceEvent::CycleStart {
            now: SimTime::ZERO,
            queued: 3,
        });
        p.on_event(&TraceEvent::NodeUp {
            now: SimTime::from_secs(1),
            node: NodeId(2),
        });
        assert_eq!(p.len(), 2);
        let events = p.take();
        assert_eq!(events.len(), 2);
        assert!(p.is_empty());
        assert_eq!(events[1].time(), SimTime::from_secs(1));
    }

    #[test]
    fn jsonl_probe_writes_one_line_per_event() {
        let probe = JsonlProbe::new(Vec::new());
        probe.on_event(&TraceEvent::CycleStart {
            now: SimTime::from_micros(30),
            queued: 2,
        });
        probe.on_event(&TraceEvent::EstimateCorrection {
            now: SimTime::from_micros(99),
            chunk: chunk(1),
            old: SimDuration::from_micros(500),
            new: SimDuration::from_micros(400),
        });
        assert_eq!(probe.write_errors(), 0);
        let bytes = std::mem::take(&mut *probe.out.lock().unwrap());
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t\":\"cycle_start\",\"now_us\":30,\"queued\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"t\":\"estimate\",\"now_us\":99,\"chunk\":{\"dataset\":0,\"index\":1},\
             \"old_us\":500,\"new_us\":400}"
        );
    }

    #[test]
    fn json_covers_every_variant() {
        let events = [
            TraceEvent::CycleStart {
                now: SimTime::ZERO,
                queued: 1,
            },
            TraceEvent::CycleEnd {
                now: SimTime::ZERO,
                assignments: 1,
                wall_micros: 7,
            },
            assign(1, 0, 2, 0, 5),
            done(1, 0, 2, 1, 6),
            TraceEvent::EstimateCorrection {
                now: SimTime::ZERO,
                chunk: chunk(0),
                old: SimDuration::ZERO,
                new: SimDuration::ZERO,
            },
            TraceEvent::AvailableCorrection {
                now: SimTime::ZERO,
                node: NodeId(0),
                old: SimTime::ZERO,
                new: SimTime::ZERO,
            },
            TraceEvent::CacheLoad {
                now: SimTime::ZERO,
                node: NodeId(0),
                chunk: chunk(0),
            },
            TraceEvent::CacheEvict {
                now: SimTime::ZERO,
                node: NodeId(0),
                chunk: chunk(1),
            },
            TraceEvent::NodeFault {
                now: SimTime::ZERO,
                node: NodeId(1),
                lost_tasks: 4,
            },
            TraceEvent::NodeUp {
                now: SimTime::ZERO,
                node: NodeId(1),
            },
            TraceEvent::JobDone {
                now: SimTime::ZERO,
                job: JobId(9),
                latency: SimDuration::from_millis(3),
            },
            TraceEvent::Admitted {
                now: SimTime::ZERO,
                job: JobId(10),
                queue_depth: 2,
            },
            TraceEvent::Rejected {
                now: SimTime::ZERO,
                job: JobId(11),
                reason: RejectReason::GlobalCap,
            },
            TraceEvent::Coalesced {
                now: SimTime::ZERO,
                superseded: JobId(12),
                by: JobId(13),
            },
            TraceEvent::Expired {
                now: SimTime::ZERO,
                job: JobId(14),
                waited: SimDuration::from_millis(50),
            },
            TraceEvent::BatchEscalated {
                now: SimTime::ZERO,
                job: JobId(15),
                waited: SimDuration::from_secs(2),
            },
            TraceEvent::ShardAssigned {
                now: SimTime::ZERO,
                job: JobId(16),
                shard: ShardId(3),
            },
            TraceEvent::ShardMigrated {
                now: SimTime::ZERO,
                job: JobId(17),
                from: ShardId(3),
                to: ShardId(0),
            },
            TraceEvent::ShardSaturated {
                now: SimTime::ZERO,
                shard: ShardId(3),
                queued: 12,
            },
            TraceEvent::WeightsUpdated {
                now: SimTime::ZERO,
                locality_pm: 520,
                balance_pm: 180,
                fragmentation_pm: 150,
                starvation_pm: 150,
            },
            TraceEvent::ShareAdjusted {
                now: SimTime::ZERO,
                node: NodeId(2),
                interactive_pm: 625,
            },
            TraceEvent::FaultInjected {
                now: SimTime::ZERO,
                kind: InjectedFault::NodeDegrade,
                target: 3,
                param: 2000,
            },
            TraceEvent::ShardFailed {
                now: SimTime::ZERO,
                shard: ShardId(1),
                orphaned: 5,
            },
            TraceEvent::ShardRecovered {
                now: SimTime::ZERO,
                shard: ShardId(1),
                adopted: 2,
            },
            TraceEvent::DegradedEntered {
                now: SimTime::ZERO,
                pressure: 6,
            },
            TraceEvent::DegradedExited {
                now: SimTime::ZERO,
                pressure: 1,
            },
        ];
        assert_eq!(events.len(), TraceEvent::TAGS.len());
        let jsonl = events_to_jsonl(&events);
        assert_eq!(jsonl.lines().count(), events.len());
        for (line, event) in jsonl.lines().zip(&events) {
            assert!(
                line.starts_with(&format!("{{\"t\":\"{}\"", event.tag())),
                "{line}"
            );
            assert!(TraceEvent::TAGS.contains(&event.tag()), "{line}");
            assert!(line.ends_with('}'), "{line}");
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "balanced braces: {line}"
            );
        }
    }

    #[test]
    fn reason_codes_round_trip() {
        for reason in [
            RejectReason::GlobalCap,
            RejectReason::UserCap,
            RejectReason::QueueFull,
            RejectReason::Degraded,
        ] {
            assert_eq!(RejectReason::from_code(reason.code()), Some(reason));
        }
        for reason in [DropReason::DeadlineExpired, DropReason::Superseded] {
            assert_eq!(DropReason::from_code(reason.code()), Some(reason));
        }
        assert_eq!(RejectReason::from_code(9), None);
        assert_eq!(DropReason::from_code(9), None);
    }

    #[test]
    fn prediction_report_joins_assignments_to_completions() {
        let events = vec![
            TraceEvent::CycleStart {
                now: SimTime::ZERO,
                queued: 2,
            },
            assign(1, 0, 0, 0, 10),
            assign(2, 0, 1, 0, 10),
            TraceEvent::CycleEnd {
                now: SimTime::ZERO,
                assignments: 2,
                wall_micros: 5,
            },
            // Job 1 ran exactly as predicted; job 2 started 4 ms late and
            // ran 2 ms long.
            done(1, 0, 0, 0, 10),
            done(2, 0, 1, 4, 12),
        ];
        let cycles = prediction_by_cycle(&events);
        assert_eq!(cycles.len(), 1);
        let c = cycles[0];
        assert_eq!((c.assigned, c.completed), (2, 2));
        assert_eq!(c.mean_start_error, SimDuration::from_millis(2));
        assert_eq!(c.mean_exec_error, SimDuration::from_millis(1));
        let text = format_prediction_report(&cycles, 10);
        assert!(text.contains("start err avg"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn prediction_report_handles_reassignment() {
        // The same task is assigned twice (crash re-placement): only the
        // second assignment may claim the completion.
        let events = vec![
            TraceEvent::CycleStart {
                now: SimTime::ZERO,
                queued: 1,
            },
            assign(1, 0, 0, 0, 10),
            TraceEvent::CycleStart {
                now: SimTime::from_millis(30),
                queued: 0,
            },
            assign(1, 0, 1, 30, 10),
            done(1, 0, 1, 30, 10),
        ];
        let cycles = prediction_by_cycle(&events);
        // The first cycle's assignment was superseded, leaving it empty, so
        // only the second cycle is reported.
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].cycle, 1);
        assert_eq!((cycles[0].assigned, cycles[0].completed), (1, 1));
        assert_eq!(cycles[0].mean_start_error, SimDuration::ZERO);
    }

    #[test]
    fn estimate_trajectory_extracts_errors() {
        let events = vec![
            TraceEvent::EstimateCorrection {
                now: SimTime::from_millis(1),
                chunk: chunk(0),
                old: SimDuration::from_millis(100),
                new: SimDuration::from_millis(40),
            },
            TraceEvent::EstimateCorrection {
                now: SimTime::from_millis(2),
                chunk: chunk(0),
                old: SimDuration::from_millis(40),
                new: SimDuration::from_millis(41),
            },
        ];
        let points = estimate_trajectory(&events);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].error, SimDuration::from_millis(60));
        assert_eq!(points[1].error, SimDuration::from_millis(1));
    }

    #[test]
    fn recovery_report_measures_mttr_and_reroutes() {
        let events = vec![
            // Job 1 is interactive (flagged on its assignment); job 2 is not.
            assign(1, 0, 0, 0, 5),
            TraceEvent::FaultInjected {
                now: SimTime::from_millis(10),
                kind: InjectedFault::NodeCrash,
                target: 0,
                param: 0,
            },
            TraceEvent::NodeFault {
                now: SimTime::from_millis(10),
                node: NodeId(0),
                lost_tasks: 2,
            },
            TraceEvent::JobDone {
                now: SimTime::from_millis(40),
                job: JobId(2),
                latency: SimDuration::from_millis(40),
            },
            TraceEvent::FaultInjected {
                now: SimTime::from_millis(50),
                kind: InjectedFault::ShardCrash,
                target: 1,
                param: 0,
            },
            TraceEvent::ShardFailed {
                now: SimTime::from_millis(50),
                shard: ShardId(1),
                orphaned: 3,
            },
            // A batch completion first: closes plain MTTR, not interactive.
            TraceEvent::JobDone {
                now: SimTime::from_millis(60),
                job: JobId(2),
                latency: SimDuration::from_millis(10),
            },
            TraceEvent::JobDone {
                now: SimTime::from_millis(75),
                job: JobId(1),
                latency: SimDuration::from_millis(25),
            },
            TraceEvent::Expired {
                now: SimTime::from_millis(80),
                job: JobId(3),
                waited: SimDuration::from_millis(80),
            },
        ];
        let report = recovery_report(&events);
        assert_eq!(report.faults.len(), 2);
        assert_eq!(report.faults[0].mttr, Some(SimDuration::from_millis(30)));
        assert_eq!(report.faults[0].interactive_mttr, None);
        assert_eq!(report.faults[1].mttr, Some(SimDuration::from_millis(10)));
        assert_eq!(
            report.faults[1].interactive_mttr,
            Some(SimDuration::from_millis(25))
        );
        assert_eq!(report.max_mttr, SimDuration::from_millis(30));
        assert_eq!(report.mean_mttr, SimDuration::from_millis(20));
        assert_eq!(report.max_interactive_mttr, SimDuration::from_millis(25));
        assert_eq!(report.jobs_rerouted, 5);
        assert_eq!(report.frames_lost, 1);
    }

    #[test]
    fn node_activity_measures_busy_idle_and_starvation() {
        let events = vec![
            done(1, 0, 0, 0, 20),  // node 0 busy 0-20
            done(2, 0, 0, 60, 40), // node 0 busy 60-100 → 40 ms starvation gap
            done(3, 0, 1, 50, 10), // node 1 busy 50-60
        ];
        let horizon = SimTime::from_millis(100);
        let activity = node_activity(&events, 2, horizon);
        assert_eq!(activity[0].tasks, 2);
        assert_eq!(activity[0].busy, SimDuration::from_millis(60));
        assert_eq!(activity[0].idle, SimDuration::from_millis(40));
        assert_eq!(activity[0].longest_idle, SimDuration::from_millis(40));
        assert!((activity[0].utilization - 0.6).abs() < 1e-9);
        // Node 1 idles 50 ms before its only task and 40 ms after.
        assert_eq!(activity[1].longest_idle, SimDuration::from_millis(50));
        let text = format_node_activity(&activity);
        assert!(text.contains("longest idle"));
        assert_eq!(text.lines().count(), 3);
    }
}
