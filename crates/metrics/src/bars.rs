//! Terminal bar charts: an ASCII rendition of the paper's figure style,
//! so experiment binaries can show Fig. 4–7's bar-and-line layout without
//! a plotting stack.

use crate::report::SchedulerReport;

/// Render a horizontal bar chart of one numeric column.
///
/// `rows` pairs a label with a value; bars are scaled to `width` columns
/// against the maximum value (or `scale_max` when given, e.g. the target
/// frame rate).
pub fn bar_chart(
    title: &str,
    rows: &[(String, f64)],
    width: usize,
    scale_max: Option<f64>,
) -> String {
    assert!(width >= 4, "chart needs some width");
    let max = scale_max
        .unwrap_or_else(|| rows.iter().map(|r| r.1).fold(0.0, f64::max))
        .max(1e-12);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0).max(5);
    let mut out = format!("{title}\n");
    for (label, value) in rows {
        let frac = (value / max).clamp(0.0, 1.0);
        let filled = (frac * width as f64).round() as usize;
        out.push_str(&format!(
            "  {label:<label_w$} |{}{}| {value:.2}\n",
            "█".repeat(filled),
            " ".repeat(width - filled),
        ));
    }
    out
}

/// The Fig. 4-style view of a scenario: frame-rate bars (scaled to the
/// target) and latency annotations per scheduler.
pub fn format_figure(reports: &[SchedulerReport], target_fps: f64) -> String {
    let rows: Vec<(String, f64)> = reports
        .iter()
        .map(|r| (r.scheduler.clone(), r.fps.mean))
        .collect();
    let mut out = bar_chart(
        &format!("interactive frame rate (target {target_fps:.2} fps)"),
        &rows,
        40,
        Some(target_fps.max(rows.iter().map(|r| r.1).fold(0.0, f64::max))),
    );
    out.push_str("latencies:");
    for r in reports {
        out.push_str(&format!(
            " {}={:.3}s",
            r.scheduler, r.interactive_latency.mean
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunRecord;

    #[test]
    fn bars_scale_to_the_maximum() {
        let rows = vec![("A".to_string(), 10.0), ("B".to_string(), 5.0)];
        let chart = bar_chart("t", &rows, 10, None);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].matches('█').count(), 10);
        assert_eq!(lines[2].matches('█').count(), 5);
    }

    #[test]
    fn explicit_scale_clamps_overshoot() {
        let rows = vec![("x".to_string(), 50.0)];
        let chart = bar_chart("t", &rows, 8, Some(25.0));
        assert_eq!(chart.lines().nth(1).unwrap().matches('█').count(), 8);
    }

    #[test]
    fn zero_values_render_empty_bars() {
        let rows = vec![("z".to_string(), 0.0)];
        let chart = bar_chart("t", &rows, 6, Some(10.0));
        assert_eq!(chart.lines().nth(1).unwrap().matches('█').count(), 0);
    }

    #[test]
    fn figure_includes_every_scheduler() {
        let mk = |name: &str| {
            let run = RunRecord {
                scheduler: name.to_string(),
                ..Default::default()
            };
            SchedulerReport::from_run(&run)
        };
        let fig = format_figure(&[mk("OURS"), mk("FCFS")], 33.33);
        assert!(fig.contains("OURS"));
        assert!(fig.contains("FCFS"));
        assert!(fig.contains("latencies:"));
    }
}
