//! Time-bucketed series over a run: how frame rate and latency evolve
//! over the experiment (the time axis behind Figs. 4–7's per-scenario
//! summaries, and handy for spotting warm-up transients or batch-induced
//! stalls).

use crate::record::RunRecord;
use serde::{Deserialize, Serialize};
use vizsched_core::time::{SimDuration, SimTime};

/// One bucket of the series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Bucket start time, seconds.
    pub t_secs: f64,
    /// Interactive jobs completed in this bucket.
    pub interactive_completed: u64,
    /// Batch jobs completed in this bucket.
    pub batch_completed: u64,
    /// Aggregate interactive completion rate (jobs/s) in the bucket.
    pub interactive_rate: f64,
    /// Mean interactive latency of the jobs completing in this bucket,
    /// seconds (0 when none completed).
    pub mean_latency: f64,
}

/// A bucketed completion series.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Bucket width.
    pub bucket: SimDuration,
    /// Buckets covering `[0, makespan]`.
    pub points: Vec<TimelinePoint>,
}

impl Timeline {
    /// Bucket a run's completions into `bucket`-sized windows.
    pub fn of(run: &RunRecord, bucket: SimDuration) -> Timeline {
        assert!(!bucket.is_zero(), "bucket must be positive");
        let horizon = run.makespan.max(SimTime::from_micros(1));
        let n = horizon.as_micros().div_ceil(bucket.as_micros()) as usize;
        let mut points = vec![TimelinePoint::default(); n];
        let mut latency_sums = vec![0.0f64; n];
        for (i, p) in points.iter_mut().enumerate() {
            p.t_secs = (bucket * i as u64).as_secs_f64();
        }
        for job in &run.jobs {
            let Some(finish) = job.timing.finish else {
                continue;
            };
            let idx = ((finish.as_micros().saturating_sub(1)) / bucket.as_micros()) as usize;
            let idx = idx.min(n - 1);
            if job.kind.is_interactive() {
                points[idx].interactive_completed += 1;
                if let Some(lat) = job.timing.latency() {
                    latency_sums[idx] += lat.as_secs_f64();
                }
            } else {
                points[idx].batch_completed += 1;
            }
        }
        let secs = bucket.as_secs_f64();
        for (p, lat) in points.iter_mut().zip(latency_sums) {
            p.interactive_rate = p.interactive_completed as f64 / secs;
            if p.interactive_completed > 0 {
                p.mean_latency = lat / p.interactive_completed as f64;
            }
        }
        Timeline { bucket, points }
    }

    /// Render as a small table (seconds, rate, latency).
    pub fn format(&self) -> String {
        let mut out = format!(
            "{:>8} {:>12} {:>12} {:>12}\n",
            "t", "int jobs/s", "batch done", "lat avg"
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>7.1}s {:>12.1} {:>12} {:>11.3}s\n",
                p.t_secs, p.interactive_rate, p.batch_completed, p.mean_latency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JobRecord;
    use vizsched_core::cost::JobTiming;
    use vizsched_core::ids::{ActionId, DatasetId, JobId, UserId};
    use vizsched_core::job::JobKind;

    fn job(id: u64, issue_ms: u64, finish_ms: u64) -> JobRecord {
        let mut timing = JobTiming::issued_at(SimTime::from_millis(issue_ms));
        timing.record_start(SimTime::from_millis(issue_ms));
        timing.record_finish(SimTime::from_millis(finish_ms));
        JobRecord {
            id: JobId(id),
            kind: JobKind::Interactive {
                user: UserId(0),
                action: ActionId(0),
            },
            dataset: DatasetId(0),
            timing,
            tasks: 1,
            misses: 0,
        }
    }

    fn run(jobs: Vec<JobRecord>) -> RunRecord {
        let makespan = jobs
            .iter()
            .filter_map(|j| j.timing.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        RunRecord {
            jobs,
            makespan,
            ..RunRecord::default()
        }
    }

    #[test]
    fn buckets_count_completions() {
        // Jobs finishing at 100, 900, 1100 ms with 1 s buckets.
        let r = run(vec![job(0, 0, 100), job(1, 800, 900), job(2, 1000, 1100)]);
        let tl = Timeline::of(&r, SimDuration::from_secs(1));
        assert_eq!(tl.points.len(), 2);
        assert_eq!(tl.points[0].interactive_completed, 2);
        assert_eq!(tl.points[1].interactive_completed, 1);
        assert!((tl.points[0].interactive_rate - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_boundary_goes_to_lower_bucket() {
        // A completion at exactly 1.000 s belongs to the first bucket
        // (buckets are (start, end] in effect).
        let r = run(vec![job(0, 0, 1000)]);
        let tl = Timeline::of(&r, SimDuration::from_secs(1));
        assert_eq!(tl.points.len(), 1);
        assert_eq!(tl.points[0].interactive_completed, 1);
    }

    #[test]
    fn latency_averages_within_bucket() {
        let r = run(vec![job(0, 0, 100), job(1, 0, 300)]);
        let tl = Timeline::of(&r, SimDuration::from_secs(1));
        assert!((tl.points[0].mean_latency - 0.2).abs() < 1e-9);
    }

    #[test]
    fn format_renders_rows() {
        let r = run(vec![job(0, 0, 100)]);
        let tl = Timeline::of(&r, SimDuration::from_millis(500));
        let text = tl.format();
        assert!(text.contains("int jobs/s"));
        assert_eq!(text.lines().count(), 2);
    }
}
