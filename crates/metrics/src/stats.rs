//! Small descriptive-statistics helpers used by every report.

use serde::{Deserialize, Serialize};
use vizsched_core::time::SimDuration;

/// Summary statistics over a sample of non-negative values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Summarize a sample of floats. Returns the zero summary for an empty
    /// sample.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let mean = sum / count as f64;
        let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            std_dev: var.sqrt(),
        }
    }

    /// Summarize durations, in seconds.
    pub fn of_durations(values: &[SimDuration]) -> Summary {
        let secs: Vec<f64> = values.iter().map(|d| d.as_secs_f64()).collect();
        Summary::of(&secs)
    }
}

/// Nearest-rank percentile over an already-sorted sample, `q` in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_zero() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 0.25), 10.0);
        assert_eq!(percentile(&sorted, 0.26), 20.0);
        assert_eq!(percentile(&sorted, 1.0), 40.0);
    }

    #[test]
    fn durations_convert_to_seconds() {
        let s = Summary::of_durations(&[
            SimDuration::from_millis(500),
            SimDuration::from_millis(1500),
        ]);
        assert!((s.mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn order_invariance() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }
}
