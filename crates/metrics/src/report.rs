//! Aggregation of [`RunRecord`]s into the quantities the paper plots:
//! per-action interactive frame rate and latency (Figs. 4–7 top), batch
//! latency and working time (Figs. 5–7 bottom), data-reuse hit rate and
//! scheduling cost (Table III).

use crate::record::RunRecord;
use crate::stats::Summary;
use serde::{Deserialize, Serialize};
use vizsched_core::cost::framerate;
use vizsched_core::fxhash::FxHashMap;
use vizsched_core::ids::ActionId;
use vizsched_core::time::SimTime;

/// Aggregated results for one scheduler on one scenario — one bar group in
/// the paper's figures.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SchedulerReport {
    /// Scheduler display name.
    pub scheduler: String,
    /// Scenario label.
    pub scenario: String,
    /// Number of interactive jobs completed.
    pub interactive_jobs: usize,
    /// Number of batch jobs completed.
    pub batch_jobs: usize,
    /// Per-action frame rates (Definition 4), summarized across actions.
    pub fps: Summary,
    /// Interactive job latencies, seconds.
    pub interactive_latency: Summary,
    /// Batch job latencies, seconds.
    pub batch_latency: Summary,
    /// Batch working times (`JF − JS`), seconds.
    pub batch_working: Summary,
    /// Fraction of tasks served warm.
    pub hit_rate: f64,
    /// Mean wall-clock scheduling cost per job, microseconds.
    pub sched_cost_us: f64,
    /// Scheduler invocations.
    pub sched_invocations: u64,
    /// Virtual time of the last completion, seconds.
    pub makespan_secs: f64,
    /// Jain's fairness index over per-user delivered service time
    /// (1.0 = perfectly equal shares; 1/n = one user got everything).
    /// The quantity the FS/FSD policies optimize for.
    pub fairness: f64,
}

impl SchedulerReport {
    /// Aggregate one run.
    pub fn from_run(run: &RunRecord) -> SchedulerReport {
        // Group interactive finish times by action for Definition 4.
        let mut by_action: FxHashMap<ActionId, Vec<SimTime>> = FxHashMap::default();
        let mut interactive_latency = Vec::new();
        let mut interactive_jobs = 0usize;
        for job in run.interactive_jobs() {
            interactive_jobs += 1;
            if let (Some(action), Some(finish)) = (job.kind.action(), job.timing.finish) {
                by_action.entry(action).or_default().push(finish);
            }
            if let Some(lat) = job.timing.latency() {
                interactive_latency.push(lat.as_secs_f64());
            }
        }
        let mut fps_samples: Vec<f64> = by_action.values().filter_map(|f| framerate(f)).collect();
        fps_samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite fps"));

        let mut batch_latency = Vec::new();
        let mut batch_working = Vec::new();
        let mut batch_jobs = 0usize;
        for job in run.batch_jobs() {
            batch_jobs += 1;
            if let Some(lat) = job.timing.latency() {
                batch_latency.push(lat.as_secs_f64());
            }
            if let Some(work) = job.timing.execution() {
                batch_working.push(work.as_secs_f64());
            }
        }

        // Jain's index over the execution time delivered to each user.
        let mut per_user: FxHashMap<vizsched_core::ids::UserId, f64> = FxHashMap::default();
        for job in &run.jobs {
            if let Some(exec) = job.timing.execution() {
                *per_user.entry(job.kind.user()).or_insert(0.0) += exec.as_secs_f64();
            }
        }
        let fairness = jain_index(per_user.values().copied());

        SchedulerReport {
            scheduler: run.scheduler.clone(),
            scenario: run.scenario.clone(),
            interactive_jobs,
            batch_jobs,
            fps: Summary::of(&fps_samples),
            interactive_latency: Summary::of(&interactive_latency),
            batch_latency: Summary::of(&batch_latency),
            batch_working: Summary::of(&batch_working),
            hit_rate: run.hit_rate(),
            sched_cost_us: run.sched_cost_per_job_micros(),
            sched_invocations: run.sched_invocations,
            makespan_secs: run.makespan.as_secs_f64(),
            fairness,
        }
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative shares;
/// 1.0 for an empty or perfectly balanced sample.
pub fn jain_index(shares: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut n = 0usize;
    for x in shares {
        debug_assert!(x >= 0.0, "shares must be non-negative");
        sum += x;
        sum_sq += x * x;
        n += 1;
    }
    if n == 0 || sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Render the Figs. 4–7 style comparison: one row per scheduler with
/// interactive fps/latency and batch latency/working time.
pub fn format_comparison(reports: &[SchedulerReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<7} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>12}\n",
        "sched",
        "fps(mean)",
        "int lat avg",
        "int lat p95",
        "bat lat avg",
        "bat work avg",
        "hit%",
        "cost us/job"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<7} {:>10.2} {:>11.3}s {:>11.3}s {:>11.3}s {:>11.3}s {:>8.2}% {:>12.2}\n",
            r.scheduler,
            r.fps.mean,
            r.interactive_latency.mean,
            r.interactive_latency.p95,
            r.batch_latency.mean,
            r.batch_working.mean,
            r.hit_rate * 100.0,
            r.sched_cost_us,
        ));
    }
    out
}

/// Serialize reports as CSV (one row per scheduler) for external plotting.
pub fn reports_to_csv(reports: &[SchedulerReport]) -> String {
    let mut out = String::from(
        "scenario,scheduler,interactive_jobs,batch_jobs,fps_mean,fps_p50,         int_latency_mean_s,int_latency_p95_s,batch_latency_mean_s,         batch_working_mean_s,hit_rate,gpu_unused,sched_cost_us,fairness,makespan_s
",
    );
    for r in reports {
        out.push_str(&format!(
            "{},{},{},{},{:.4},{:.4},{:.6},{:.6},{:.6},{:.6},{:.6},,{:.4},{:.4},{:.3}
",
            r.scenario,
            r.scheduler,
            r.interactive_jobs,
            r.batch_jobs,
            r.fps.mean,
            r.fps.p50,
            r.interactive_latency.mean,
            r.interactive_latency.p95,
            r.batch_latency.mean,
            r.batch_working.mean,
            r.hit_rate,
            r.sched_cost_us,
            r.fairness,
            r.makespan_secs,
        ));
    }
    out
}

/// Render the Table III block for one scenario: hit rates and average
/// scheduling costs of FS / FCFSU / FCFSL / OURS.
pub fn format_table3_block(scenario: &str, reports: &[SchedulerReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!("scenario {scenario}\n"));
    out.push_str(&format!("  {:<16}", "metric"));
    for r in reports {
        out.push_str(&format!("{:>10}", r.scheduler));
    }
    out.push('\n');
    out.push_str(&format!("  {:<16}", "hit rate"));
    for r in reports {
        out.push_str(&format!("{:>9.2}%", r.hit_rate * 100.0));
    }
    out.push('\n');
    out.push_str(&format!("  {:<16}", "avg. cost (us)"));
    for r in reports {
        out.push_str(&format!("{:>10.1}", r.sched_cost_us));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JobRecord;
    use vizsched_core::cost::JobTiming;
    use vizsched_core::ids::{ActionId, BatchId, DatasetId, JobId, UserId};
    use vizsched_core::job::JobKind;
    use vizsched_core::time::SimTime;

    fn interactive(id: u64, action: u64, issue_ms: u64, finish_ms: u64) -> JobRecord {
        let mut timing = JobTiming::issued_at(SimTime::from_millis(issue_ms));
        timing.record_start(SimTime::from_millis(issue_ms));
        timing.record_finish(SimTime::from_millis(finish_ms));
        JobRecord {
            id: JobId(id),
            kind: JobKind::Interactive {
                user: UserId(0),
                action: ActionId(action),
            },
            dataset: DatasetId(0),
            timing,
            tasks: 4,
            misses: 0,
        }
    }

    fn batch(id: u64, issue_ms: u64, start_ms: u64, finish_ms: u64) -> JobRecord {
        let mut timing = JobTiming::issued_at(SimTime::from_millis(issue_ms));
        timing.record_start(SimTime::from_millis(start_ms));
        timing.record_finish(SimTime::from_millis(finish_ms));
        JobRecord {
            id: JobId(id),
            kind: JobKind::Batch {
                user: UserId(1),
                request: BatchId(0),
                frame: 0,
            },
            dataset: DatasetId(0),
            timing,
            tasks: 4,
            misses: 1,
        }
    }

    fn sample_run() -> RunRecord {
        RunRecord {
            scheduler: "OURS".into(),
            scenario: "test".into(),
            jobs: vec![
                interactive(0, 0, 0, 10),
                interactive(1, 0, 30, 40),
                interactive(2, 0, 60, 70),
                batch(3, 0, 100, 400),
            ],
            cache_hits: 15,
            cache_misses: 1,
            gpu_hits: 0,
            evictions: 0,
            sched_wall_micros: 120,
            sched_invocations: 4,
            jobs_scheduled: 4,
            makespan: SimTime::from_millis(400),
        }
    }

    #[test]
    fn report_computes_definition4_fps() {
        let report = SchedulerReport::from_run(&sample_run());
        // Finishes at 10, 40, 70 ms -> gaps of 30 ms -> 33.33 fps.
        assert_eq!(report.fps.count, 1);
        assert!(
            (report.fps.mean - 33.333).abs() < 0.01,
            "fps = {}",
            report.fps.mean
        );
        assert_eq!(report.interactive_jobs, 3);
        assert_eq!(report.batch_jobs, 1);
    }

    #[test]
    fn report_computes_latencies() {
        let report = SchedulerReport::from_run(&sample_run());
        assert!((report.interactive_latency.mean - 0.010).abs() < 1e-9);
        assert!((report.batch_latency.mean - 0.400).abs() < 1e-9);
        assert!((report.batch_working.mean - 0.300).abs() < 1e-9);
    }

    #[test]
    fn report_carries_hit_rate_and_cost() {
        let report = SchedulerReport::from_run(&sample_run());
        assert!((report.hit_rate - 15.0 / 16.0).abs() < 1e-12);
        assert!((report.sched_cost_us - 30.0).abs() < 1e-12);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(std::iter::empty()), 1.0);
        assert!((jain_index([5.0, 5.0, 5.0].into_iter()) - 1.0).abs() < 1e-12);
        // One user hogging everything over n users -> 1/n.
        assert!((jain_index([9.0, 0.0, 0.0].into_iter()) - 1.0 / 3.0).abs() < 1e-12);
        let mid = jain_index([4.0, 1.0].into_iter());
        assert!(mid > 0.5 && mid < 1.0, "partial imbalance: {mid}");
    }

    #[test]
    fn report_computes_fairness() {
        let report = SchedulerReport::from_run(&sample_run());
        // All interactive jobs belong to user 0 and the batch job to user
        // 1; shares are unequal but both positive.
        assert!(
            report.fairness > 0.5 && report.fairness <= 1.0,
            "{}",
            report.fairness
        );
    }

    #[test]
    fn csv_has_one_row_per_report_plus_header() {
        let report = SchedulerReport::from_run(&sample_run());
        let csv = reports_to_csv(&[report.clone(), report]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("test,OURS,3,1,"));
    }

    #[test]
    fn tables_render_without_panicking() {
        let report = SchedulerReport::from_run(&sample_run());
        let cmp = format_comparison(std::slice::from_ref(&report));
        assert!(cmp.contains("OURS"));
        let t3 = format_table3_block("1", &[report]);
        assert!(t3.contains("hit rate"));
        assert!(t3.contains("93.75%"));
    }
}
