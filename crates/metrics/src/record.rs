//! Raw per-run result records produced by an execution substrate (the
//! discrete-event simulator or the live service) and consumed by the
//! report aggregators.

use serde::{Deserialize, Serialize};
use vizsched_core::cost::JobTiming;
use vizsched_core::ids::{DatasetId, JobId};
use vizsched_core::job::JobKind;
use vizsched_core::time::SimTime;

/// Everything recorded about one completed (or still-open) job.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job.
    pub id: JobId,
    /// Interactive or batch, and its provenance.
    pub kind: JobKind,
    /// Dataset rendered.
    pub dataset: DatasetId,
    /// Issue/start/finish times (Definitions 2–3).
    pub timing: JobTiming,
    /// Total tasks the job decomposed into.
    pub tasks: u32,
    /// Tasks that had to fetch their chunk from disk.
    pub misses: u32,
}

impl JobRecord {
    /// True once every task has finished.
    pub fn is_complete(&self) -> bool {
        self.timing.finish.is_some()
    }
}

/// The complete outcome of one run of one scheduler over one workload.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunRecord {
    /// Scheduler display name ("OURS", "FCFSL", …).
    pub scheduler: String,
    /// Workload/scenario label.
    pub scenario: String,
    /// One record per job, in issue order.
    pub jobs: Vec<JobRecord>,
    /// Tasks served from a warm main-memory cache.
    pub cache_hits: u64,
    /// Tasks that performed disk I/O.
    pub cache_misses: u64,
    /// Tasks whose chunk was already GPU-resident (zero unless the
    /// two-tier extension is enabled); a subset of `cache_hits`.
    pub gpu_hits: u64,
    /// Chunk evictions across all nodes.
    pub evictions: u64,
    /// Wall-clock time spent inside `Scheduler::schedule`, microseconds
    /// (this is *host* time — the basis of Table III's "avg. cost").
    pub sched_wall_micros: u64,
    /// Number of `schedule` invocations.
    pub sched_invocations: u64,
    /// Jobs passed through `schedule`.
    pub jobs_scheduled: u64,
    /// Virtual time at which the last task finished.
    pub makespan: SimTime,
}

impl RunRecord {
    /// Fraction of tasks served without disk I/O (Table III's "hit rate").
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }

    /// Fraction of tasks needing no data movement at all (GPU-resident),
    /// for the two-tier extension.
    pub fn gpu_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.gpu_hits as f64 / total as f64
    }

    /// Average wall-clock scheduling cost per job in microseconds
    /// (Table III's "avg. cost").
    pub fn sched_cost_per_job_micros(&self) -> f64 {
        if self.jobs_scheduled == 0 {
            return 0.0;
        }
        self.sched_wall_micros as f64 / self.jobs_scheduled as f64
    }

    /// Records of interactive jobs.
    pub fn interactive_jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| j.kind.is_interactive())
    }

    /// Records of batch jobs.
    pub fn batch_jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.iter().filter(|j| !j.kind.is_interactive())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizsched_core::ids::{ActionId, UserId};

    fn record(hits: u64, misses: u64) -> RunRecord {
        RunRecord {
            cache_hits: hits,
            cache_misses: misses,
            ..RunRecord::default()
        }
    }

    #[test]
    fn hit_rate_basic() {
        assert_eq!(record(99, 1).hit_rate(), 0.99);
        assert_eq!(record(0, 0).hit_rate(), 0.0);
        assert_eq!(record(5, 0).hit_rate(), 1.0);
    }

    #[test]
    fn sched_cost_per_job() {
        let mut r = record(0, 0);
        r.sched_wall_micros = 300;
        r.jobs_scheduled = 10;
        assert_eq!(r.sched_cost_per_job_micros(), 30.0);
        r.jobs_scheduled = 0;
        assert_eq!(r.sched_cost_per_job_micros(), 0.0);
    }

    #[test]
    fn job_partitions() {
        let mk = |id: u64, interactive: bool| JobRecord {
            id: JobId(id),
            kind: if interactive {
                JobKind::Interactive {
                    user: UserId(0),
                    action: ActionId(0),
                }
            } else {
                JobKind::Batch {
                    user: UserId(0),
                    request: vizsched_core::ids::BatchId(0),
                    frame: 0,
                }
            },
            dataset: DatasetId(0),
            timing: JobTiming::issued_at(SimTime::ZERO),
            tasks: 4,
            misses: 0,
        };
        let r = RunRecord {
            jobs: vec![mk(0, true), mk(1, false), mk(2, true)],
            ..RunRecord::default()
        };
        assert_eq!(r.interactive_jobs().count(), 2);
        assert_eq!(r.batch_jobs().count(), 1);
    }
}
