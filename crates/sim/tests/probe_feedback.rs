//! Probe-observed prediction feedback: seed `Estimate[c]` with a
//! deliberately wrong prior and watch the shared runtime's corrections
//! pull the head node's predictions back to reality, cycle over cycle.

use std::sync::Arc;
use vizsched_core::prelude::*;
use vizsched_metrics::{estimate_trajectory, prediction_by_cycle, CollectingProbe, TraceEvent};
use vizsched_sim::{RunOptions, SimConfig, Simulation};

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

fn interactive(id: u64, action: u64, at: SimTime) -> Job {
    Job {
        id: JobId(id),
        kind: JobKind::Interactive {
            user: UserId(action as u32),
            action: ActionId(action),
        },
        dataset: DatasetId(0),
        issue_time: at,
        frame: FrameParams::default(),
    }
}

fn small_sim() -> Simulation {
    let cluster = ClusterSpec::homogeneous(4, 2 * GIB);
    let config = SimConfig::new(cluster, CostParams::default(), 512 * MIB);
    Simulation::new(config, uniform_datasets(1, 2 * GIB))
}

/// A wildly pessimistic prior for every chunk of dataset 0 (4 chunks of
/// 512 MiB): 60 s of I/O per chunk where the truth is a few seconds.
fn wrong_priors() -> Vec<(ChunkId, SimDuration)> {
    (0..4)
        .map(|i| (ChunkId::new(DatasetId(0), i), SimDuration::from_secs(60)))
        .collect()
}

#[test]
fn wrong_estimate_prior_converges_under_correction() {
    let probe = Arc::new(CollectingProbe::new());
    let jobs: Vec<Job> = (0..12)
        .map(|i| interactive(i, i, SimTime::from_millis(200 * i)))
        .collect();
    let outcome = small_sim().run_opts(
        jobs,
        RunOptions::new(SchedulerKind::Ours)
            .label("feedback")
            .warm_start(false)
            .initial_estimates(wrong_priors())
            .probe(probe.clone()),
    );
    assert_eq!(outcome.incomplete_jobs, 0);
    let events = probe.take();

    // The first miss of each chunk replaces the 60 s prior with the
    // observed time: one large correction per chunk, nothing after.
    let trajectory = estimate_trajectory(&events);
    assert_eq!(
        trajectory.len(),
        4,
        "one correction per chunk on its first miss"
    );
    for point in &trajectory {
        assert!(
            point.error > SimDuration::from_secs(50),
            "correction must discard the wrong prior (|old-new| = {})",
            point.error
        );
    }

    // Per-cycle prediction error must collapse once the corrections land:
    // the first cycle schedules against the 60 s prior, later cycles
    // against measurements.
    let cycles = prediction_by_cycle(&events);
    assert!(
        cycles.len() >= 3,
        "expected several scheduling cycles, got {}",
        cycles.len()
    );
    let first = cycles.first().unwrap();
    let last = cycles.last().unwrap();
    assert!(
        first.mean_exec_error > SimDuration::from_secs(50),
        "first cycle predicts with the wrong prior (err = {})",
        first.mean_exec_error
    );
    assert!(
        last.mean_exec_error < SimDuration::from_millis(100),
        "corrected estimates must predict within jitter (err = {})",
        last.mean_exec_error
    );
    assert!(
        last.mean_exec_error * 10 < first.mean_exec_error,
        "error must shrink >10x"
    );
}

#[test]
fn probe_event_stream_is_conserved() {
    let probe = Arc::new(CollectingProbe::new());
    let jobs: Vec<Job> = (0..8)
        .map(|i| interactive(i, i % 2, SimTime::from_millis(150 * i)))
        .collect();
    let outcome = small_sim().run_opts(
        jobs,
        RunOptions::new(SchedulerKind::Ours)
            .label("conserve")
            .probe(probe.clone()),
    );
    assert_eq!(outcome.incomplete_jobs, 0);
    let events = probe.take();

    let count = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
    let starts = count(&|e| matches!(e, TraceEvent::CycleStart { .. }));
    let ends = count(&|e| matches!(e, TraceEvent::CycleEnd { .. }));
    let assigns = count(&|e| matches!(e, TraceEvent::Assignment { .. }));
    let dones = count(&|e| matches!(e, TraceEvent::TaskDone { .. }));
    let jobs_done = count(&|e| matches!(e, TraceEvent::JobDone { .. }));
    assert_eq!(starts, ends, "every cycle start has a matching end");
    assert_eq!(
        assigns, dones,
        "every assignment completes (no faults injected)"
    );
    assert_eq!(jobs_done, 8, "every job reports completion");
    // Events arrive in non-decreasing simulated time.
    assert!(events.windows(2).all(|w| w[0].time() <= w[1].time()));
}

#[test]
fn seed_perturbs_while_zero_seed_reproduces() {
    let jobs: Vec<Job> = (0..10)
        .map(|i| interactive(i, i, SimTime::from_millis(100 * i)))
        .collect();
    let run = |seed: u64| {
        let outcome = small_sim().run_opts(
            jobs.clone(),
            RunOptions::new(SchedulerKind::Ours)
                .label("seed")
                .exec_jitter(0.1)
                .seed(seed),
        );
        outcome
            .record
            .jobs
            .iter()
            .map(|j| j.timing.finish)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7), "equal seeds are bit-identical");
    assert_ne!(run(0), run(7), "distinct seeds realize distinct jitter");
}
