//! Behavioural tests of the discrete-event engine: timing fidelity to the
//! cost model, table correction, determinism, deferral draining, and fault
//! tolerance.

use vizsched_core::prelude::*;
use vizsched_sim::{Fault, RunOptions, SimConfig, Simulation};

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

fn interactive(id: u64, action: u64, dataset: u32, at: SimTime) -> Job {
    Job {
        id: JobId(id),
        kind: JobKind::Interactive {
            user: UserId(action as u32),
            action: ActionId(action),
        },
        dataset: DatasetId(dataset),
        issue_time: at,
        frame: FrameParams::default(),
    }
}

fn batch(id: u64, request: u64, dataset: u32, at: SimTime) -> Job {
    Job {
        id: JobId(id),
        kind: JobKind::Batch {
            user: UserId(900),
            request: BatchId(request),
            frame: 0,
        },
        dataset: DatasetId(dataset),
        issue_time: at,
        frame: FrameParams::default(),
    }
}

fn small_sim() -> Simulation {
    let cluster = ClusterSpec::homogeneous(4, 2 * GIB);
    let config = SimConfig::new(cluster, CostParams::default(), 512 * MIB);
    Simulation::new(config, uniform_datasets(2, 2 * GIB))
}

#[test]
fn single_cold_job_latency_matches_cost_model() {
    let sim = small_sim();
    let cost = sim.config().cost;
    let outcome = sim.run_opts(
        vec![interactive(0, 0, 0, SimTime::ZERO)],
        RunOptions::new(SchedulerKind::Fcfs).label("t"),
    );
    assert_eq!(outcome.incomplete_jobs, 0);
    let job = &outcome.record.jobs[0];
    // 4 cold tasks spread over 4 idle nodes run fully in parallel; the job
    // finishes after exactly one cold task execution (group = 4).
    let expected = cost.task_exec(512 * MIB, false, 4);
    assert_eq!(job.timing.latency(), Some(expected));
    assert_eq!(job.misses, 4);
    assert_eq!(outcome.record.cache_misses, 4);
    assert_eq!(outcome.record.cache_hits, 0);
}

#[test]
fn warm_second_job_runs_in_milliseconds() {
    let sim = small_sim();
    let cost = sim.config().cost;
    let io = cost.io_time(512 * MIB);
    let j0 = interactive(0, 0, 0, SimTime::ZERO);
    // Issue the second job well after the first completes.
    let later = SimTime::ZERO + io * 2;
    let j1 = interactive(1, 0, 0, later);
    let outcome = sim.run_opts(
        vec![j0, j1],
        RunOptions::new(SchedulerKind::Fcfsl).label("t"),
    );
    assert_eq!(outcome.incomplete_jobs, 0);
    let warm = &outcome.record.jobs[1];
    assert_eq!(warm.misses, 0, "second frame must be all cache hits");
    let expected = cost.task_exec(512 * MIB, true, 4);
    assert_eq!(warm.timing.latency(), Some(expected));
    assert!(expected.as_millis_f64() < 50.0);
}

#[test]
fn estimate_table_learns_from_measurements() {
    // Run on a cluster whose node disks are 2x slower than the cost model
    // claims; the engine must still finish and the measured I/O must exceed
    // the a-priori estimate (visible through job latency).
    let mut cluster = ClusterSpec::homogeneous(2, 2 * GIB);
    for node in &mut cluster.nodes {
        node.disk_scale = 0.5;
    }
    let cost = CostParams::default();
    let config = SimConfig::new(cluster, cost, 512 * MIB);
    let sim = Simulation::new(config, uniform_datasets(1, 2 * GIB));
    let outcome = sim.run_opts(
        vec![interactive(0, 0, 0, SimTime::ZERO)],
        RunOptions::new(SchedulerKind::Fcfsl).label("t"),
    );
    let lat = outcome.record.jobs[0].timing.latency().unwrap();
    // Two chunks per node, each paying doubled I/O sequentially.
    assert!(
        lat > cost.io_time(512 * MIB) * 3,
        "latency {lat} should reflect slow disks"
    );
}

#[test]
fn runs_are_deterministic() {
    let jobs: Vec<Job> = (0..50)
        .map(|i| interactive(i, i % 3, (i % 2) as u32, SimTime::from_millis(30 * i)))
        .collect();
    let run = || {
        let sim = small_sim();
        let outcome = sim.run_opts(
            jobs.clone(),
            RunOptions::new(SchedulerKind::Ours).label("det"),
        );
        (
            outcome.record.cache_hits,
            outcome.record.cache_misses,
            outcome.record.makespan,
            outcome
                .record
                .jobs
                .iter()
                .map(|j| j.timing.finish)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn ours_defers_batch_but_drains_it() {
    let sim = small_sim();
    let mut jobs = Vec::new();
    // A steady interactive stream on dataset 0 for 3 seconds…
    for i in 0..100u64 {
        jobs.push(interactive(i, 0, 0, SimTime::from_millis(30 * i)));
    }
    // …and a burst of batch jobs on dataset 1 arriving early.
    for b in 0..10u64 {
        jobs.push(batch(100 + b, b, 1, SimTime::from_millis(100)));
    }
    jobs.sort_by_key(|j| j.issue_time);
    let outcome = sim.run_opts(jobs, RunOptions::new(SchedulerKind::Ours).label("defer"));
    assert_eq!(
        outcome.incomplete_jobs, 0,
        "deferred batch must eventually drain"
    );
    let report = vizsched_metrics::SchedulerReport::from_run(&outcome.record);
    assert_eq!(report.batch_jobs, 10);
    assert!(report.batch_latency.mean > 0.0);
}

#[test]
fn crash_mid_run_still_completes_jobs() {
    let cluster = ClusterSpec::homogeneous(4, 2 * GIB);
    let cost = CostParams::default();
    let mut config = SimConfig::new(cluster, cost, 512 * MIB);
    // Crash node 1 while the first job's cold loads are in flight; recover
    // much later.
    config.faults = vec![
        Fault {
            time: SimTime::from_millis(500),
            node: NodeId(1),
            crash: true,
        },
        Fault {
            time: SimTime::from_secs(60),
            node: NodeId(1),
            crash: false,
        },
    ];
    let sim = Simulation::new(config, uniform_datasets(2, 2 * GIB));
    let jobs: Vec<Job> = (0..20)
        .map(|i| interactive(i, 0, 0, SimTime::from_millis(30 * i)))
        .collect();
    let outcome = sim.run_opts(jobs, RunOptions::new(SchedulerKind::Ours).label("crash"));
    assert_eq!(
        outcome.incomplete_jobs, 0,
        "work lost in the crash must be re-placed"
    );
    assert_eq!(outcome.record.jobs.len(), 20);
    assert!(outcome
        .record
        .jobs
        .iter()
        .all(|j| j.timing.finish.is_some()));
}

#[test]
fn trace_records_every_task() {
    let cluster = ClusterSpec::homogeneous(2, 2 * GIB);
    let mut config = SimConfig::new(cluster, CostParams::default(), 512 * MIB);
    config.record_trace = true;
    let sim = Simulation::new(config, uniform_datasets(1, 2 * GIB));
    let outcome = sim.run_opts(
        vec![interactive(0, 0, 0, SimTime::ZERO)],
        RunOptions::new(SchedulerKind::Fcfs).label("t"),
    );
    assert_eq!(outcome.trace.len(), 4);
    for t in &outcome.trace {
        assert!(t.finish > t.start);
        assert!(t.miss, "first touch of every chunk is a miss");
    }
}

#[test]
fn fcfsu_uses_uniform_decomposition() {
    let sim = small_sim();
    let outcome = sim.run_opts(
        vec![interactive(0, 0, 0, SimTime::ZERO)],
        RunOptions::new(SchedulerKind::Fcfsu).label("t"),
    );
    // 4 nodes -> 4 uniform chunks -> 4 tasks; with MaxChunkSize it would
    // also be 4 here, so check the byte size instead: 2 GiB / 4 = 512 MiB
    // per uniform chunk on *this* cluster, but trace isn't on; use the
    // record: every task missed, and tasks == node count.
    assert_eq!(outcome.record.jobs[0].tasks, 4);
    assert_eq!(outcome.record.jobs[0].misses, 4);
}

#[test]
fn makespan_tracks_last_completion() {
    let sim = small_sim();
    let outcome = sim.run_opts(
        vec![interactive(0, 0, 0, SimTime::ZERO)],
        RunOptions::new(SchedulerKind::Fcfs).label("t"),
    );
    let jf = outcome.record.jobs[0].timing.finish.unwrap();
    assert_eq!(outcome.record.makespan, jf);
}

#[test]
fn interleaved_users_all_finish() {
    let sim = small_sim();
    let mut jobs = Vec::new();
    let mut id = 0u64;
    for step in 0..60u64 {
        for user in 0..3u64 {
            jobs.push(interactive(
                id,
                user,
                (user % 2) as u32,
                SimTime::from_millis(30 * step),
            ));
            id += 1;
        }
    }
    for kind in [
        SchedulerKind::Fcfs,
        SchedulerKind::Fcfsl,
        SchedulerKind::Fs,
        SchedulerKind::Sf,
    ] {
        let outcome = sim.run_opts(jobs.clone(), RunOptions::new(kind).label("mix"));
        assert_eq!(
            outcome.incomplete_jobs,
            0,
            "{} left jobs unfinished",
            kind.name()
        );
        assert_eq!(outcome.record.jobs.len(), 180);
    }
}

#[test]
fn shared_fs_contention_slows_concurrent_loads() {
    // Four cold tasks on four nodes, all loading at once.
    let cluster = ClusterSpec::homogeneous(4, 2 * GIB);
    let cost = CostParams::default();
    let job = interactive(0, 0, 0, SimTime::ZERO);

    let independent = {
        let config = SimConfig::new(cluster.clone(), cost, 512 * MIB);
        let sim = Simulation::new(config, uniform_datasets(1, 2 * GIB));
        sim.run_opts(
            vec![job.clone()],
            RunOptions::new(SchedulerKind::Fcfs).label("indep"),
        )
    };
    let contended = {
        let mut config = SimConfig::new(cluster, cost, 512 * MIB);
        config.shared_fs_capacity = Some(1); // one full-speed stream
        let sim = Simulation::new(config, uniform_datasets(1, 2 * GIB));
        sim.run_opts(
            vec![job],
            RunOptions::new(SchedulerKind::Fcfs).label("shared"),
        )
    };
    let lat_i = independent.record.jobs[0].timing.latency().unwrap();
    let lat_c = contended.record.jobs[0].timing.latency().unwrap();
    assert!(
        lat_c > lat_i.mul_f64(1.5),
        "four concurrent loads through a capacity-1 server must be slower: {lat_c} vs {lat_i}"
    );
    // A solitary load (capacity 1, nothing else in flight) is unaffected:
    // the first load starts alone, so its I/O portion is at full speed.
    assert_eq!(
        independent.record.cache_misses,
        contended.record.cache_misses
    );
}

#[test]
fn available_table_is_corrected_toward_reality() {
    // Predictions start from the cost model; after completions the head's
    // availability must reflect the node's actual (empty) backlog rather
    // than stale optimistic pushes.
    let sim = small_sim();
    let job = interactive(0, 0, 0, SimTime::ZERO);
    let outcome = sim.run_opts(
        vec![job],
        RunOptions::new(SchedulerKind::Fcfsl).label("corr"),
    );
    // All tasks done; makespan equals the single cold task exec, meaning no
    // phantom backlog lingered anywhere to delay the final completion.
    let cost = sim.config().cost;
    assert_eq!(
        outcome.record.makespan,
        SimTime::ZERO + cost.task_exec(512 * MIB, false, 4)
    );
}

#[test]
fn estimate_corrections_improve_later_predictions() {
    // Slow disks: the first load measures ~2x the model estimate; later
    // scheduling rounds should therefore *predict* longer execs, which we
    // observe through assignments avoiding the slow path — here simply
    // through completion: the run still drains with no incomplete jobs.
    let mut cluster = ClusterSpec::homogeneous(2, 2 * GIB);
    for node in &mut cluster.nodes {
        node.disk_scale = 0.25;
    }
    let config = SimConfig::new(cluster, CostParams::default(), 512 * MIB);
    let sim = Simulation::new(config, uniform_datasets(2, 2 * GIB));
    let jobs: Vec<Job> = (0..30)
        .map(|i| interactive(i, i % 2, (i % 2) as u32, SimTime::from_millis(200 * i)))
        .collect();
    let outcome = sim.run_opts(jobs, RunOptions::new(SchedulerKind::Ours).label("estimate"));
    assert_eq!(outcome.incomplete_jobs, 0);
    // Hit rate should still be high: corrections do not destabilize
    // placement.
    assert!(
        outcome.record.hit_rate() > 0.8,
        "hit {}",
        outcome.record.hit_rate()
    );
}

#[test]
fn node_stats_reflect_load_balance() {
    let sim = small_sim();
    let jobs: Vec<Job> = (0..80)
        .map(|i| interactive(i, 0, 0, SimTime::from_millis(30 * i)))
        .collect();
    let outcome = sim.run_opts(jobs, RunOptions::new(SchedulerKind::Ours).label("balance"));
    assert_eq!(outcome.node_stats.len(), 4);
    let total: u64 = outcome.node_stats.iter().map(|s| s.tasks).sum();
    assert_eq!(
        total,
        outcome.record.cache_hits + outcome.record.cache_misses
    );
    for s in &outcome.node_stats {
        assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
        assert_eq!(s.tasks, s.hits + s.misses);
    }
    // One dataset over four nodes: every node carries work.
    assert!(outcome.node_stats.iter().all(|s| s.tasks > 0));
}
