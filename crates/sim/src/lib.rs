//! # vizsched-sim
//!
//! A deterministic discrete-event simulator of a GPU rendering cluster:
//! the execution substrate for every scheduling experiment in the paper
//! reproduction. Nodes process tasks FIFO over an authoritative LRU chunk
//! cache and a disk model; all head-node logic — scheduler invocation,
//! run-time table correction, fault handling — is the shared
//! `vizsched-runtime`, driven here by a virtual clock and an event queue;
//! node crashes and recoveries can be injected to exercise the
//! fault-tolerance claim of §VI-D.
//!
//! Runs are configured through the builder-style [`RunOptions`]: the
//! policy, a scenario label, per-run overrides (cycle, eviction, faults,
//! jitter seed), and an optional [`vizsched_metrics::Probe`] receiving
//! every scheduling decision, completion, and table correction.
//!
//! ```
//! use vizsched_core::prelude::*;
//! use vizsched_sim::{RunOptions, SimConfig, Simulation};
//!
//! let cluster = ClusterSpec::homogeneous(4, 2 << 30);
//! let config = SimConfig::new(cluster, CostParams::default(), 512 << 20);
//! let sim = Simulation::new(config, uniform_datasets(2, 2 << 30));
//!
//! let job = Job {
//!     id: JobId(0),
//!     kind: JobKind::Interactive { user: UserId(0), action: ActionId(0) },
//!     dataset: DatasetId(0),
//!     issue_time: SimTime::ZERO,
//!     frame: FrameParams::default(),
//! };
//! let outcome = sim.run_opts(vec![job], RunOptions::new(SchedulerKind::Ours).label("doc"));
//! assert_eq!(outcome.incomplete_jobs, 0);
//! assert!(outcome.record.jobs[0].timing.latency().is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod event;
pub mod node;
pub mod options;
pub mod trace;

pub use engine::{Fault, NodeStats, SimConfig, SimOutcome, Simulation, TaskTrace};
pub use event::{Event, EventKind, EventQueue};
pub use node::{RunningTask, SimNode};
pub use options::{RunOptions, SchedulerChoice};
pub use trace::{ascii_gantt, node_utilization, trace_to_csv, NodeUtilization};
pub use vizsched_runtime::{
    FaultEvent, FaultKind, FaultPlan, OverloadPolicy, OverloadStats, ShardOutcome,
};

/// The one-line import for simulation experiments: the simulation types,
/// run configuration, and the probe machinery they plug into.
pub mod prelude {
    pub use crate::engine::{Fault, SimConfig, SimOutcome, Simulation};
    pub use crate::options::{RunOptions, SchedulerChoice};
    pub use vizsched_metrics::{CollectingProbe, JsonlProbe, NoopProbe, Probe, TraceEvent};
    pub use vizsched_runtime::{FaultKind, FaultPlan};
}
