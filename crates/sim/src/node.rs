//! The simulated rendering node: a FIFO task queue in front of an
//! authoritative chunk cache and a disk model.
//!
//! "A rendering node processes the incoming rendering tasks on a
//! First-In-First-Out basis" (§III-A). Execution time follows the cost
//! model: a cache miss pays `t_io` (scaled by the node's disk speed) before
//! `t_render + t_composite`.

use std::collections::VecDeque;
use vizsched_core::cost::CostParams;
use vizsched_core::ids::{ChunkId, NodeId};
use vizsched_core::memory::EvictionPolicy;
use vizsched_core::sched::Assignment;
use vizsched_core::tiered::{Tier, TieredMemory};
use vizsched_core::time::{SimDuration, SimTime};

/// The task currently executing on a node.
#[derive(Clone, Debug)]
pub struct RunningTask {
    /// The assignment being executed.
    pub assignment: Assignment,
    /// When execution began.
    pub started: SimTime,
    /// When it will finish.
    pub finish: SimTime,
    /// Measured disk I/O time (zero unless the chunk missed main memory).
    pub io: SimDuration,
    /// Measured host→GPU upload time (zero on a GPU hit or when the
    /// two-tier extension is off).
    pub upload: SimDuration,
    /// Which tier the chunk was found in.
    pub tier: Tier,
    /// True if the chunk had to be fetched from disk.
    pub miss: bool,
    /// Chunks evicted from main memory to make room (empty on a hit).
    pub evicted: Vec<ChunkId>,
    /// Chunks evicted from the GPU tier only.
    pub gpu_evicted: Vec<ChunkId>,
}

/// One simulated rendering node.
#[derive(Debug)]
pub struct SimNode {
    /// This node's id.
    pub id: NodeId,
    /// Authoritative chunk cache (main memory, plus video memory when the
    /// two-tier extension is on).
    pub memory: TieredMemory,
    /// Relative disk speed (bandwidth multiplier ≥ 0; larger is faster).
    pub disk_scale: f64,
    /// Tasks waiting to run, in assignment order.
    pub queue: VecDeque<Assignment>,
    /// The task executing right now, if any.
    pub running: Option<RunningTask>,
    /// Sum of `predicted_exec` over `queue` — the head node's corrected
    /// estimate of this node's backlog.
    pub predicted_backlog: SimDuration,
    /// Crash generation: incremented on every crash so stale completion
    /// events can be discarded.
    pub generation: u32,
    /// True while crashed.
    pub crashed: bool,
    /// Main-memory cache hits served.
    pub hits: u64,
    /// Cache misses served (disk reads).
    pub misses: u64,
    /// Hits that were already GPU-resident (two-tier extension).
    pub gpu_hits: u64,
    /// Total busy time (for utilization accounting).
    pub busy: SimDuration,
    /// Seed folded into the per-task jitter hash (see
    /// [`SimConfig::jitter_seed`](crate::SimConfig)); zero reproduces the
    /// unseeded stream.
    pub jitter_seed: u64,
    /// Degraded-node slowdown in per-mille (1000 = nominal): every task's
    /// execution time is multiplied by `slow_pm / 1000`. Set by the
    /// fault plan's `NodeDegrade`, reset by `NodeRestore`; models a
    /// thermally-throttled GPU or a failing disk without taking the node
    /// out of the schedulable set.
    pub slow_pm: u32,
}

impl SimNode {
    /// A node with `quota` bytes of main-memory cache under `eviction`,
    /// reading disk at `disk_scale` times the cost model's bandwidth.
    /// `gpu_quota` enables the two-tier extension when set.
    pub fn new(
        id: NodeId,
        quota: u64,
        eviction: EvictionPolicy,
        disk_scale: f64,
        gpu_quota: Option<u64>,
    ) -> Self {
        assert!(disk_scale > 0.0, "disk scale must be positive");
        let eviction = match eviction {
            EvictionPolicy::Random { seed } => EvictionPolicy::Random {
                seed: seed.wrapping_add(id.0 as u64),
            },
            other => other,
        };
        let memory = match gpu_quota {
            Some(gpu) => TieredMemory::two_tier(quota, gpu, eviction),
            None => TieredMemory::host_only(quota, eviction),
        };
        SimNode {
            id,
            memory,
            disk_scale,
            queue: VecDeque::new(),
            running: None,
            predicted_backlog: SimDuration::ZERO,
            generation: 0,
            crashed: false,
            hits: 0,
            misses: 0,
            gpu_hits: 0,
            busy: SimDuration::ZERO,
            jitter_seed: 0,
            slow_pm: 1000,
        }
    }

    /// True when nothing is running (the queue may still hold work that has
    /// not been started yet).
    pub fn is_idle(&self) -> bool {
        self.running.is_none()
    }

    /// Accept an assignment at the back of the FIFO queue.
    pub fn enqueue(&mut self, assignment: Assignment) {
        self.predicted_backlog += assignment.predicted_exec;
        self.queue.push_back(assignment);
    }

    /// Start the next queued task at `now`, computing its real execution
    /// time from the authoritative cache state. Returns the started task,
    /// or `None` when the queue is empty. The caller schedules the matching
    /// `TaskDone` event at `finish`.
    ///
    /// `jitter` is the amplitude of a deterministic per-task execution-time
    /// perturbation (hash-seeded, ±`jitter` relative): real renderers and
    /// disks never take *exactly* the model time, and without this noise a
    /// perfectly periodic workload can lock a locality-blind scheduler into
    /// an accidental perfect placement that no physical system exhibits.
    pub fn start_next(
        &mut self,
        now: SimTime,
        cost: &CostParams,
        jitter: f64,
    ) -> Option<&RunningTask> {
        self.start_next_contended(now, cost, jitter, 1.0)
    }

    /// [`SimNode::start_next`] with an additional disk-slowdown factor
    /// (≥ 1.0) applied to the I/O portion — the shared-file-server
    /// contention hook.
    pub fn start_next_contended(
        &mut self,
        now: SimTime,
        cost: &CostParams,
        jitter: f64,
        io_slowdown: f64,
    ) -> Option<&RunningTask> {
        assert!(io_slowdown >= 1.0, "contention can only slow loads down");
        assert!(self.running.is_none(), "node {} already busy", self.id);
        if self.crashed {
            return None;
        }
        let assignment = self.queue.pop_front()?;
        self.predicted_backlog = self
            .predicted_backlog
            .saturating_sub(assignment.predicted_exec);

        let chunk = assignment.task.chunk;
        let bytes = assignment.task.bytes;
        let factor = jitter_factor(
            assignment.task.job.0 ^ self.jitter_seed,
            chunk.as_u64(),
            self.id.0,
            jitter,
        );
        let access = self.memory.access(chunk, bytes);
        let has_gpu = self.memory.has_gpu_tier();
        let (io, upload, miss) = match access.found {
            Tier::Gpu => {
                self.hits += 1;
                self.gpu_hits += 1;
                (SimDuration::ZERO, SimDuration::ZERO, false)
            }
            Tier::Host => {
                self.hits += 1;
                (
                    SimDuration::ZERO,
                    cost.upload_time(bytes).mul_f64(factor),
                    false,
                )
            }
            Tier::Disk => {
                self.misses += 1;
                let io = cost
                    .io_time(bytes)
                    .mul_f64(factor * io_slowdown / self.disk_scale);
                let upload = if has_gpu {
                    cost.upload_time(bytes).mul_f64(factor)
                } else {
                    SimDuration::ZERO
                };
                (io, upload, true)
            }
        };
        let mut exec = io
            + upload
            + (cost.render_time(bytes) + cost.composite_time(assignment.group)).mul_f64(factor);
        if self.slow_pm != 1000 {
            exec = exec.mul_f64(self.slow_pm as f64 / 1000.0);
        }
        self.busy += exec;
        let finish = now + exec;
        self.running = Some(RunningTask {
            assignment,
            started: now,
            finish,
            io,
            upload,
            tier: access.found,
            miss,
            evicted: access.host_evicted,
            gpu_evicted: access.gpu_evicted,
        });
        self.running.as_ref()
    }

    /// Take the completed running task.
    pub fn complete(&mut self) -> RunningTask {
        self.running.take().expect("complete() called while idle")
    }

    /// Crash: drop memory and return every task that was queued or running
    /// so the engine can re-place it. Bumps the generation so in-flight
    /// `TaskDone` events become stale.
    pub fn crash(&mut self) -> Vec<Assignment> {
        self.crashed = true;
        self.generation += 1;
        // Rebuild an empty cache: a rebooted node starts cold.
        self.memory.clear();
        let mut lost: Vec<Assignment> = Vec::with_capacity(self.queue.len() + 1);
        if let Some(running) = self.running.take() {
            lost.push(running.assignment);
        }
        lost.extend(self.queue.drain(..));
        self.predicted_backlog = SimDuration::ZERO;
        lost
    }

    /// Rejoin after a crash.
    pub fn recover(&mut self) {
        self.crashed = false;
    }
}

/// Deterministic per-task execution perturbation in `[1 - amp, 1 + amp]`,
/// derived from a splitmix64 hash of the task's identity and node.
pub fn jitter_factor(job: u64, chunk: u64, node: u32, amp: f64) -> f64 {
    if amp == 0.0 {
        return 1.0;
    }
    debug_assert!(
        (0.0..1.0).contains(&amp),
        "jitter amplitude must be in [0, 1)"
    );
    let mut z = job
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(chunk.rotate_left(17))
        .wrapping_add((node as u64) << 48);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + amp * (2.0 * unit - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizsched_core::ids::{DatasetId, JobId};
    use vizsched_core::job::Task;

    const MIB: u64 = 1 << 20;

    fn assignment(job: u64, chunk: u32, bytes: u64) -> Assignment {
        Assignment {
            task: Task {
                job: JobId(job),
                index: 0,
                chunk: ChunkId::new(DatasetId(0), chunk),
                bytes,
                interactive: true,
            },
            node: NodeId(0),
            predicted_start: SimTime::ZERO,
            predicted_exec: SimDuration::from_millis(10),
            group: 4,
        }
    }

    fn node() -> SimNode {
        SimNode::new(NodeId(0), 2 << 30, EvictionPolicy::Lru, 1.0, None)
    }

    #[test]
    fn cold_task_pays_io() {
        let cost = CostParams::default();
        let mut n = node();
        n.enqueue(assignment(1, 0, 512 * MIB));
        let running = n.start_next(SimTime::ZERO, &cost, 0.0).unwrap();
        assert!(running.miss);
        assert_eq!(running.io, cost.io_time(512 * MIB));
        assert_eq!(
            running.finish,
            SimTime::ZERO + cost.io_time(512 * MIB) + cost.alpha(512 * MIB, 4)
        );
        assert_eq!(n.misses, 1);
    }

    #[test]
    fn warm_task_skips_io() {
        let cost = CostParams::default();
        let mut n = node();
        n.enqueue(assignment(1, 0, 512 * MIB));
        n.start_next(SimTime::ZERO, &cost, 0.0).unwrap();
        let done = n.complete();
        n.enqueue(assignment(2, 0, 512 * MIB));
        let running = n.start_next(done.finish, &cost, 0.0).unwrap();
        assert!(!running.miss);
        assert_eq!(running.io, SimDuration::ZERO);
        assert_eq!(n.hits, 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let cost = CostParams::default();
        let mut n = node();
        n.enqueue(assignment(1, 0, MIB));
        n.enqueue(assignment(2, 1, MIB));
        assert_eq!(n.predicted_backlog, SimDuration::from_millis(20));
        let first = n
            .start_next(SimTime::ZERO, &cost, 0.0)
            .unwrap()
            .assignment
            .task
            .job;
        assert_eq!(first, JobId(1));
        assert_eq!(n.predicted_backlog, SimDuration::from_millis(10));
        let fin = n.complete().finish;
        let second = n.start_next(fin, &cost, 0.0).unwrap().assignment.task.job;
        assert_eq!(second, JobId(2));
    }

    #[test]
    fn slow_disk_scales_io() {
        let cost = CostParams::default();
        let mut fast = node();
        let mut slow = SimNode::new(NodeId(1), 2 << 30, EvictionPolicy::Lru, 0.5, None);
        fast.enqueue(assignment(1, 0, 512 * MIB));
        slow.enqueue(assignment(1, 0, 512 * MIB));
        let f = fast.start_next(SimTime::ZERO, &cost, 0.0).unwrap().io;
        let s = slow.start_next(SimTime::ZERO, &cost, 0.0).unwrap().io;
        assert_eq!(s.as_micros(), f.as_micros() * 2);
    }

    #[test]
    fn two_tier_node_charges_uploads() {
        let cost = CostParams::default();
        // GPU holds only one 512 MiB chunk; host holds four.
        let mut n = SimNode::new(
            NodeId(0),
            2 << 30,
            EvictionPolicy::Lru,
            1.0,
            Some(512 * MIB),
        );
        // Cold: disk + upload.
        n.enqueue(assignment(1, 0, 512 * MIB));
        let r = n.start_next(SimTime::ZERO, &cost, 0.0).unwrap();
        assert_eq!(r.tier, vizsched_core::tiered::Tier::Disk);
        assert_eq!(r.io, cost.io_time(512 * MIB));
        assert_eq!(r.upload, cost.upload_time(512 * MIB));
        let t1 = n.complete().finish;
        // Second chunk displaces the first from the GPU (not the host).
        n.enqueue(assignment(2, 1, 512 * MIB));
        let t2 = {
            n.start_next(t1, &cost, 0.0).unwrap();
            n.complete().finish
        };
        // Chunk 0 again: host hit, upload only.
        n.enqueue(assignment(3, 0, 512 * MIB));
        let r = n.start_next(t2, &cost, 0.0).unwrap();
        assert_eq!(r.tier, vizsched_core::tiered::Tier::Host);
        assert_eq!(r.io, SimDuration::ZERO);
        assert_eq!(r.upload, cost.upload_time(512 * MIB));
        let t3 = n.complete().finish;
        // Chunk 0 once more: now GPU-resident, free movement.
        n.enqueue(assignment(4, 0, 512 * MIB));
        let r = n.start_next(t3, &cost, 0.0).unwrap();
        assert_eq!(r.tier, vizsched_core::tiered::Tier::Gpu);
        assert_eq!(r.upload, SimDuration::ZERO);
        assert_eq!(n.gpu_hits, 1);
    }

    #[test]
    fn degraded_node_runs_slower_until_restored() {
        let cost = CostParams::default();
        let mut nominal = node();
        let mut degraded = node();
        degraded.slow_pm = 2000;
        nominal.enqueue(assignment(1, 0, 512 * MIB));
        degraded.enqueue(assignment(1, 0, 512 * MIB));
        let f = nominal
            .start_next(SimTime::ZERO, &cost, 0.0)
            .unwrap()
            .finish;
        let s = degraded
            .start_next(SimTime::ZERO, &cost, 0.0)
            .unwrap()
            .finish;
        assert_eq!(s.as_micros(), f.as_micros() * 2);
        degraded.complete();
        // Restored: back to the nominal cost model (warm hit now).
        degraded.slow_pm = 1000;
        nominal.complete();
        nominal.enqueue(assignment(2, 0, 512 * MIB));
        degraded.enqueue(assignment(2, 0, 512 * MIB));
        let f2 = nominal.start_next(f, &cost, 0.0).unwrap().finish - f;
        let s2 = degraded.start_next(s, &cost, 0.0).unwrap().finish - s;
        assert_eq!(f2, s2);
    }

    #[test]
    fn crash_returns_all_work_and_clears_cache() {
        let cost = CostParams::default();
        let mut n = node();
        n.enqueue(assignment(1, 0, MIB));
        n.enqueue(assignment(2, 1, MIB));
        n.start_next(SimTime::ZERO, &cost, 0.0);
        let lost = n.crash();
        assert_eq!(lost.len(), 2);
        assert!(n.crashed);
        assert!(n.memory.host().is_empty());
        assert_eq!(n.generation, 1);
        assert_eq!(n.predicted_backlog, SimDuration::ZERO);
        // A crashed node refuses to start work until it recovers.
        n.enqueue(assignment(3, 2, MIB));
        assert!(n.start_next(SimTime::from_secs(1), &cost, 0.0).is_none());
        n.recover();
        assert!(n.start_next(SimTime::from_secs(1), &cost, 0.0).is_some());
    }
}
