//! Trace post-processing: CSV export, per-node utilization, and a tiny
//! ASCII Gantt view for debugging small schedules.

use crate::engine::TaskTrace;
use vizsched_core::time::{SimDuration, SimTime};

/// Serialize a trace as CSV (`job,task,node,start_us,finish_us,miss`).
pub fn trace_to_csv(trace: &[TaskTrace]) -> String {
    let mut out = String::from("job,task,node,start_us,finish_us,miss\n");
    for t in trace {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            t.job.0,
            t.index,
            t.node.0,
            t.start.as_micros(),
            t.finish.as_micros(),
            u8::from(t.miss),
        ));
    }
    out
}

/// Per-node execution statistics derived from a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeUtilization {
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks that fetched from disk.
    pub misses: u64,
    /// Total busy time.
    pub busy: SimDuration,
    /// Busy fraction of the horizon (0–1).
    pub utilization: f64,
}

/// Summarize a trace into per-node utilization over `[0, horizon]`.
pub fn node_utilization(
    trace: &[TaskTrace],
    nodes: usize,
    horizon: SimTime,
) -> Vec<NodeUtilization> {
    let mut stats = vec![NodeUtilization::default(); nodes];
    for t in trace {
        let s = &mut stats[t.node.index()];
        s.tasks += 1;
        s.misses += u64::from(t.miss);
        s.busy += t.finish - t.start;
    }
    let span = horizon.as_secs_f64().max(1e-9);
    for s in &mut stats {
        s.utilization = (s.busy.as_secs_f64() / span).min(1.0);
    }
    stats
}

/// A coarse ASCII Gantt chart: one row per node, `width` columns over
/// `[0, horizon]`; `#` = executing a hit, `X` = executing a miss (I/O),
/// `.` = idle. Later tasks overwrite earlier ones within a cell.
pub fn ascii_gantt(trace: &[TaskTrace], nodes: usize, horizon: SimTime, width: usize) -> String {
    assert!(width > 0, "need at least one column");
    let span = horizon.as_micros().max(1);
    let mut rows = vec![vec![b'.'; width]; nodes];
    for t in trace {
        let a = (t.start.as_micros().min(span) as u128 * width as u128 / span as u128) as usize;
        let b = (t.finish.as_micros().min(span) as u128 * width as u128 / span as u128) as usize;
        let glyph = if t.miss { b'X' } else { b'#' };
        for cell in &mut rows[t.node.index()][a..=(b.min(width - 1))] {
            *cell = glyph;
        }
    }
    let mut out = String::new();
    for (k, row) in rows.into_iter().enumerate() {
        out.push_str(&format!("R{k:<3}|"));
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizsched_core::ids::{JobId, NodeId};

    fn t(job: u64, node: u32, start_ms: u64, finish_ms: u64, miss: bool) -> TaskTrace {
        TaskTrace {
            job: JobId(job),
            index: 0,
            node: NodeId(node),
            start: SimTime::from_millis(start_ms),
            finish: SimTime::from_millis(finish_ms),
            miss,
        }
    }

    #[test]
    fn csv_round_trips_fields() {
        let csv = trace_to_csv(&[t(7, 1, 10, 25, true)]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("job,task,node,start_us,finish_us,miss"));
        assert_eq!(lines.next(), Some("7,0,1,10000,25000,1"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn utilization_accumulates_busy_time() {
        let trace = vec![
            t(0, 0, 0, 50, true),
            t(1, 0, 50, 75, false),
            t(2, 1, 0, 25, false),
        ];
        let stats = node_utilization(&trace, 2, SimTime::from_millis(100));
        assert_eq!(stats[0].tasks, 2);
        assert_eq!(stats[0].misses, 1);
        assert!((stats[0].utilization - 0.75).abs() < 1e-9);
        assert!((stats[1].utilization - 0.25).abs() < 1e-9);
    }

    #[test]
    fn gantt_marks_busy_cells() {
        let trace = vec![t(0, 0, 0, 50, true), t(1, 1, 50, 100, false)];
        let chart = ascii_gantt(&trace, 2, SimTime::from_millis(100), 10);
        let rows: Vec<&str> = chart.lines().collect();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].contains('X'));
        // The finish boundary cell is painted inclusively, so at least the
        // last four cells stay idle.
        assert!(
            rows[0].ends_with("...."),
            "second half of node 0 idle: {}",
            rows[0]
        );
        assert!(rows[1].contains('#'));
        assert!(
            rows[1].starts_with("R1  |....."),
            "first half of node 1 idle: {}",
            rows[1]
        );
    }

    #[test]
    fn empty_trace_is_all_idle() {
        let stats = node_utilization(&[], 3, SimTime::from_secs(1));
        assert!(stats.iter().all(|s| s.tasks == 0 && s.utilization == 0.0));
        let chart = ascii_gantt(&[], 1, SimTime::from_secs(1), 5);
        assert_eq!(chart, "R0  |.....\n");
    }
}
