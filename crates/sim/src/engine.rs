//! The discrete-event engine: replays a workload through a simulated
//! cluster under one scheduling policy and records the outcome.
//!
//! This is the execution substrate standing in for the paper's two physical
//! testbeds. The paper itself evaluates the schedulers "using simulation as
//! the means for the performance evaluation" (§VI-B); this engine gives the
//! same semantics with a virtual clock:
//!
//! * jobs arrive at their issue times and enter the head node's queue;
//! * the shared [`HeadRuntime`] invokes the policy on arrival (FCFS
//!   family) or every cycle `ω` (OURS, FS, SF), and applies the run-time
//!   table corrections on every completion;
//! * assigned tasks queue FIFO on their node; execution time comes from the
//!   cost model against the node's *authoritative* cache (so optimistic
//!   predictions can be wrong);
//! * scheduling cost is measured in *host* wall-clock time around each
//!   `schedule` call — the quantity Table III reports in microseconds.
//!
//! All head-node logic lives in `vizsched-runtime`; this module only
//! implements the event-driven [`Substrate`]: the virtual clock, the node
//! model, and the event queue. Fault injection (node crash/recovery)
//! exercises the §VI-D claim that rendering continues as long as replicas
//! or reloads are possible.

use crate::event::{EventKind, EventQueue};
use crate::node::SimNode;
use crate::options::{RunOptions, SchedulerChoice};
use vizsched_core::cluster::ClusterSpec;
use vizsched_core::cost::CostParams;
use vizsched_core::data::{Catalog, DatasetDesc};
use vizsched_core::ids::{ChunkId, JobId, NodeId};
use vizsched_core::job::Job;
use vizsched_core::memory::EvictionPolicy;
use vizsched_core::sched::{Assignment, Trigger};
use vizsched_core::time::{SimDuration, SimTime};
use vizsched_metrics::{Probe, RunRecord, TraceEvent};
use vizsched_runtime::{
    Admission, Completion, FaultKind, FaultPlan, Head, HeadRuntime, OverloadStats, ShardOutcome,
    ShardedRuntime, Substrate,
};

/// A fault-injection event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// When it happens.
    pub time: SimTime,
    /// The affected node.
    pub node: NodeId,
    /// True for a crash, false for a recovery.
    pub crash: bool,
}

/// Static configuration of one simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The cluster being simulated.
    pub cluster: ClusterSpec,
    /// Cost-model constants.
    pub cost: CostParams,
    /// `Chk_max` for the max-chunk-size decomposition.
    pub chunk_max: u64,
    /// Scheduling cycle `ω` for cycle-based policies.
    pub cycle: SimDuration,
    /// Cache eviction policy on every node (LRU in the paper).
    pub eviction: EvictionPolicy,
    /// Fault injections, if any.
    pub faults: Vec<Fault>,
    /// Seedable fault schedule covering the full taxonomy (crash,
    /// respawn, degrade, restore, leaf outage, shard-head crash).
    /// Executed alongside (and identically to) the live service's plan
    /// execution, so a chaos run replays bit-identically in the sim.
    pub fault_plan: Option<FaultPlan>,
    /// Record a per-task trace (memory-hungry; tests only).
    pub record_trace: bool,
    /// Amplitude of the deterministic per-task execution-time perturbation
    /// (0.0 = exact cost model; the scenario experiments use 0.05 to model
    /// real render/disk variance).
    pub exec_jitter: f64,
    /// Pre-load chunks round-robin across nodes (up to each quota) before
    /// the run, mirroring the paper's initialization "test run" that also
    /// populates the `Estimate` table. Scenario 1's stated premise is that
    /// "total data ... can be completely cached".
    pub warm_start: bool,
    /// Enable the two-tier memory extension (§VII future work): per-node
    /// video-memory quota in bytes. `None` folds the GPU into the render
    /// constant, as the paper's base model does.
    pub gpu_quota: Option<u64>,
    /// Shared file-server contention: when set, a load that starts while
    /// `k` other loads are in flight cluster-wide runs at `1/(1 + k/c)` of
    /// nominal bandwidth, where `c` is this concurrency capacity (the
    /// number of streams the parallel FS serves at full speed). `None`
    /// models independent per-node disks. The slowdown is fixed at load
    /// start — a first-order approximation of fair-shared bandwidth.
    pub shared_fs_capacity: Option<u32>,
    /// Perturbation seed folded into the per-task execution-jitter hash;
    /// two runs differing only in seed see independent (but each fully
    /// reproducible) noise realizations. Usually set per run via
    /// [`RunOptions::seed`].
    pub jitter_seed: u64,
}

impl SimConfig {
    /// A configuration with no faults and no tracing.
    pub fn new(cluster: ClusterSpec, cost: CostParams, chunk_max: u64) -> Self {
        SimConfig {
            cluster,
            cost,
            chunk_max,
            cycle: SimDuration::from_millis(30),
            eviction: EvictionPolicy::Lru,
            faults: Vec::new(),
            fault_plan: None,
            record_trace: false,
            exec_jitter: 0.0,
            warm_start: false,
            gpu_quota: None,
            shared_fs_capacity: None,
            jitter_seed: 0,
        }
    }
}

/// One executed task, as recorded when `record_trace` is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskTrace {
    /// Owning job.
    pub job: JobId,
    /// Task index within the job.
    pub index: u32,
    /// Node that executed it.
    pub node: NodeId,
    /// Start time.
    pub start: SimTime,
    /// Finish time.
    pub finish: SimTime,
    /// True if the chunk was fetched from disk.
    pub miss: bool,
}

/// Per-node execution counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks served from main memory.
    pub hits: u64,
    /// Tasks that read from disk.
    pub misses: u64,
    /// Hits that were GPU-resident (two-tier extension).
    pub gpu_hits: u64,
    /// Total busy time.
    pub busy: SimDuration,
    /// Busy fraction of the makespan, 0–1.
    pub utilization: f64,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The aggregate record consumed by `vizsched-metrics`.
    pub record: RunRecord,
    /// Per-task trace (empty unless `record_trace`).
    pub trace: Vec<TaskTrace>,
    /// Per-node execution counters (load-balance view).
    pub node_stats: Vec<NodeStats>,
    /// Jobs that never completed (should be zero unless nodes stayed down).
    pub incomplete_jobs: usize,
    /// Admission-control counters (all zero unless the run sets an
    /// [`OverloadPolicy`](vizsched_runtime::OverloadPolicy)).
    pub overload: OverloadStats,
    /// Per-shard routing and completion counters (empty unless the run
    /// set [`RunOptions::shards`](crate::RunOptions::shards) above 1).
    pub per_shard: Vec<ShardOutcome>,
}

/// A workload replayer for one configuration.
#[derive(Clone, Debug)]
pub struct Simulation {
    config: SimConfig,
    datasets: Vec<DatasetDesc>,
}

impl Simulation {
    /// Create a simulation over `datasets`.
    pub fn new(config: SimConfig, datasets: Vec<DatasetDesc>) -> Self {
        Simulation { config, datasets }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run one policy over `jobs` (must be sorted by issue time) under
    /// [`RunOptions`]: label, probe, per-run overrides, `Estimate[c]`
    /// pre-seeding.
    pub fn run_opts(&self, jobs: Vec<Job>, opts: RunOptions) -> SimOutcome {
        let mut config = self.config.clone();
        if let Some(cost) = opts.cost {
            config.cost = cost;
        }
        if let Some(cycle) = opts.cycle {
            config.cycle = cycle;
        }
        if let Some(eviction) = opts.eviction {
            config.eviction = eviction;
        }
        if let Some(faults) = opts.faults {
            config.faults = faults;
        }
        if let Some(plan) = opts.fault_plan {
            config.fault_plan = Some(plan);
        }
        if let Some(jitter) = opts.exec_jitter {
            config.exec_jitter = jitter;
        }
        if let Some(warm) = opts.warm_start {
            config.warm_start = warm;
        }
        if let Some(trace) = opts.record_trace {
            config.record_trace = trace;
        }
        if let Some(seed) = opts.seed {
            config.jitter_seed = seed;
            if let EvictionPolicy::Random { seed: base } = config.eviction {
                config.eviction = EvictionPolicy::Random {
                    seed: base.wrapping_add(seed),
                };
            }
        }
        let catalog = match opts.catalog {
            Some(catalog) => catalog,
            None => {
                let policy = match &opts.scheduler {
                    SchedulerChoice::Kind(kind) => kind
                        .build(config.cycle)
                        .decomposition(config.chunk_max, config.cluster.len() as u32),
                    SchedulerChoice::Instance(s) => {
                        s.decomposition(config.chunk_max, config.cluster.len() as u32)
                    }
                };
                Catalog::new(self.datasets.clone(), policy)
            }
        };
        let mut engine = Engine::new(
            &config,
            catalog,
            opts.scheduler,
            opts.shards,
            &opts.label,
            opts.probe,
        );
        engine.runtime.set_overload_policy(opts.overload);
        for (chunk, estimate) in opts.initial_estimates {
            engine.runtime.seed_estimate(chunk, estimate);
        }
        engine.run(jobs)
    }
}

/// The event-driven execution layer under the shared head runtime: a
/// virtual clock, the authoritative node model, and the event queue.
struct SimSubstrate<'a> {
    config: &'a SimConfig,
    nodes: Vec<SimNode>,
    events: EventQueue,
    now: SimTime,
    tick_armed: bool,
    trace: Vec<TaskTrace>,
    /// Disk loads currently in flight (shared-FS contention input).
    loads_in_flight: u32,
}

impl Substrate for SimSubstrate<'_> {
    fn dispatch(&mut self, assignment: &Assignment) -> bool {
        let node = assignment.node;
        self.nodes[node.index()].enqueue(*assignment);
        if self.nodes[node.index()].is_idle() {
            self.start_node(node);
        }
        true
    }
}

impl SimSubstrate<'_> {
    fn start_node(&mut self, node: NodeId) {
        // Shared-FS contention: loads starting now run slower the more
        // loads are already streaming from the file server.
        let contention = match self.config.shared_fs_capacity {
            Some(capacity) if capacity > 0 => 1.0 + self.loads_in_flight as f64 / capacity as f64,
            _ => 1.0,
        };
        let n = &mut self.nodes[node.index()];
        if !n.is_idle() || n.crashed {
            return;
        }
        let (finish, miss, generation) = match n.start_next_contended(
            self.now,
            &self.config.cost,
            self.config.exec_jitter,
            contention,
        ) {
            Some(running) => (running.finish, running.miss, n.generation),
            None => return,
        };
        if miss {
            self.loads_in_flight += 1;
        }
        self.events
            .push(finish, EventKind::TaskDone { node, generation });
    }

    fn arm_tick(&mut self, trigger: Trigger) {
        if self.tick_armed {
            return;
        }
        let Trigger::Cycle(cycle) = trigger else {
            return;
        };
        let omega = cycle.as_micros().max(1);
        let next = self.now.as_micros().div_ceil(omega) * omega;
        self.tick_armed = true;
        self.events
            .push(SimTime::from_micros(next), EventKind::Tick);
    }

    /// Arm the *next* cycle boundary strictly after `now` (used from within
    /// a tick so the chain advances).
    fn arm_tick_after(&mut self, trigger: Trigger) {
        if self.tick_armed {
            return;
        }
        let Trigger::Cycle(cycle) = trigger else {
            return;
        };
        let omega = cycle.as_micros().max(1);
        let next = (self.now.as_micros() / omega + 1) * omega;
        self.tick_armed = true;
        self.events
            .push(SimTime::from_micros(next), EventKind::Tick);
    }
}

struct Engine<'a> {
    runtime: Head,
    sub: SimSubstrate<'a>,
    /// The run's probe, kept for engine-level events (`fault_injected`)
    /// that no single shard's runtime owns.
    probe: std::sync::Arc<dyn Probe>,
}

impl<'a> Engine<'a> {
    fn new(
        config: &'a SimConfig,
        catalog: Catalog,
        scheduler: SchedulerChoice,
        shards: usize,
        scenario: &str,
        probe: std::sync::Arc<dyn Probe>,
    ) -> Self {
        let engine_probe = probe.clone();
        let tables_for = |cluster: &ClusterSpec| match config.gpu_quota {
            Some(gpu) => {
                vizsched_core::tables::HeadTables::with_gpu_tier(cluster, gpu, config.eviction)
            }
            None => vizsched_core::tables::HeadTables::with_eviction(cluster, config.eviction),
        };
        let runtime = if shards <= 1 {
            let scheduler = match scheduler {
                SchedulerChoice::Kind(kind) => kind.build(config.cycle),
                SchedulerChoice::Instance(instance) => instance,
            };
            Head::Single(HeadRuntime::new(
                scheduler,
                tables_for(&config.cluster),
                catalog,
                config.cost,
                probe,
                scenario,
            ))
        } else {
            // Schedulers are stateful, so a sharded run builds one fresh
            // instance per shard — which needs a buildable kind, not a
            // single pre-built instance.
            let kind = match scheduler {
                SchedulerChoice::Kind(kind) => kind,
                SchedulerChoice::Instance(s) => panic!(
                    "sharded runs build one scheduler per shard; pass SchedulerKind, \
                     not a pre-built {} instance",
                    s.name()
                ),
            };
            Head::Sharded(ShardedRuntime::new(
                &config.cluster,
                shards,
                probe,
                None,
                |_, slice, shard_probe| {
                    HeadRuntime::new(
                        kind.build(config.cycle),
                        tables_for(slice),
                        catalog.clone(),
                        config.cost,
                        shard_probe,
                        scenario,
                    )
                },
            ))
        };
        let nodes = config
            .cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(k, spec)| {
                let mut node = SimNode::new(
                    NodeId(k as u32),
                    spec.mem_quota,
                    config.eviction,
                    spec.disk_scale,
                    config.gpu_quota,
                );
                node.jitter_seed = config.jitter_seed;
                node
            })
            .collect();
        Engine {
            runtime,
            sub: SimSubstrate {
                config,
                nodes,
                events: EventQueue::new(),
                now: SimTime::ZERO,
                tick_armed: false,
                trace: Vec::new(),
                loads_in_flight: 0,
            },
            probe: engine_probe,
        }
    }

    fn run(mut self, jobs: Vec<Job>) -> SimOutcome {
        if self.sub.config.warm_start {
            self.warm_start();
        }
        // Seed the event queue with arrivals and faults.
        let mut last = SimTime::ZERO;
        for job in jobs {
            assert!(job.issue_time >= last, "jobs must be sorted by issue time");
            last = job.issue_time;
            self.sub
                .events
                .push(job.issue_time, EventKind::Arrival(job));
        }
        for fault in &self.sub.config.faults {
            let kind = if fault.crash {
                EventKind::NodeCrash(fault.node)
            } else {
                EventKind::NodeRecover(fault.node)
            };
            self.sub.events.push(fault.time, kind);
        }
        if let Some(plan) = &self.sub.config.fault_plan {
            for event in plan.events() {
                self.sub
                    .events
                    .push(event.at, EventKind::PlanFault(event.kind));
            }
        }

        while let Some(event) = self.sub.events.pop() {
            self.sub.now = event.time;
            match event.kind {
                EventKind::Arrival(job) => self.on_arrival(job),
                EventKind::Tick => self.on_tick(),
                EventKind::TaskDone { node, generation } => self.on_task_done(node, generation),
                EventKind::NodeCrash(node) => self.on_crash(node),
                EventKind::NodeRecover(node) => self.on_recover(node),
                EventKind::PlanFault(kind) => self.on_plan_fault(kind),
            }
        }

        self.finish()
    }

    /// The paper's initialization "test run": chunks are distributed
    /// round-robin over the nodes until each node's quota is full, and the
    /// head node's `Cache` table reflects the placement. (The `Estimate`
    /// table needs no seeding — its cost-model fallback is the test-run
    /// estimate.)
    fn warm_start(&mut self) {
        let p = self.sub.nodes.len();
        let chunks: Vec<(ChunkId, u64)> = self
            .runtime
            .catalog()
            .datasets()
            .iter()
            .flat_map(|d| self.runtime.catalog().chunks_of(d.id))
            .map(|c| (c.id, c.bytes))
            .collect();
        for (i, (chunk, bytes)) in chunks.into_iter().enumerate() {
            let node = NodeId((i % p) as u32);
            let mem = &mut self.sub.nodes[node.index()].memory;
            let host = mem.host();
            if host.used() + bytes <= host.quota() && !mem.host_resident(chunk) {
                mem.access(chunk, bytes);
                self.runtime.record_warm_load(node, chunk, bytes);
            }
        }
    }

    fn on_arrival(&mut self, job: Job) {
        let now = self.sub.now;
        match self.runtime.on_job_arrival(&mut self.sub, now, job) {
            Admission::Buffered { .. } => {
                let trigger = self.runtime.trigger();
                self.sub.arm_tick(trigger);
            }
            Admission::Scheduled | Admission::Rejected(_) => {}
        }
    }

    fn on_tick(&mut self) {
        self.sub.tick_armed = false;
        let now = self.sub.now;
        self.runtime.on_cycle(&mut self.sub, now);
        if self.runtime.has_deferred() {
            let trigger = self.runtime.trigger();
            self.sub.arm_tick_after(trigger);
        }
    }

    fn on_task_done(&mut self, node: NodeId, generation: u32) {
        {
            let n = &self.sub.nodes[node.index()];
            if n.crashed || n.generation != generation {
                return; // stale completion from before a crash
            }
        }
        let done = self.sub.nodes[node.index()].complete();
        if done.miss {
            self.sub.loads_in_flight = self.sub.loads_in_flight.saturating_sub(1);
        }
        let task = done.assignment.task;
        if self.sub.config.record_trace {
            self.sub.trace.push(TaskTrace {
                job: task.job,
                index: task.index,
                node,
                start: done.started,
                finish: done.finish,
                miss: done.miss,
            });
        }
        let completion = Completion {
            node,
            job: task.job,
            task: task.index,
            chunk: task.chunk,
            started: done.started,
            finish: done.finish,
            io: done.io,
            miss: done.miss,
            evicted: done.evicted,
            gpu_resident: done.tier == vizsched_core::tiered::Tier::Gpu,
            gpu_evicted: done.gpu_evicted,
        };
        self.runtime.on_task_done(self.sub.now, completion);

        self.sub.start_node(node);

        // Deferred work may now fit: make sure a cycle is coming.
        let trigger = self.runtime.trigger();
        if matches!(trigger, Trigger::Cycle(_)) && self.runtime.has_deferred() {
            self.sub.arm_tick(trigger);
        }
    }

    fn on_crash(&mut self, node: NodeId) {
        // The node model is authoritative: drop its queue and running
        // task, clear its memory, bump its completion generation. The
        // runtime re-places exactly the same tasks from its own
        // outstanding ledger (FIFO nodes keep the two views identical).
        let _ = self.sub.nodes[node.index()].crash();
        let now = self.sub.now;
        self.runtime.on_node_fault(&mut self.sub, now, node);
    }

    fn on_recover(&mut self, node: NodeId) {
        self.sub.nodes[node.index()].recover();
        self.runtime.on_node_recover(self.sub.now, node);
    }

    /// Execute one [`FaultPlan`] entry. The live service runs the same
    /// plan with the same semantics, so a chaos run replays bit-identically
    /// here. Every entry is traced as `fault_injected` before it acts.
    fn on_plan_fault(&mut self, kind: FaultKind) {
        let now = self.sub.now;
        if self.probe.enabled() {
            let (injected, target, param) = kind.injected();
            self.probe.on_event(&TraceEvent::FaultInjected {
                now,
                kind: injected,
                target,
                param,
            });
        }
        match kind {
            FaultKind::NodeCrash(node) => self.on_crash(node),
            FaultKind::NodeRespawn(node) => self.on_recover(node),
            FaultKind::NodeDegrade { node, factor_pm } => {
                self.sub.nodes[node.index()].slow_pm = factor_pm;
            }
            FaultKind::NodeRestore(node) => {
                self.sub.nodes[node.index()].slow_pm = 1000;
            }
            FaultKind::LeafOutage { base, count } => {
                for k in 0..count {
                    self.on_crash(NodeId(base.0 + k));
                }
            }
            FaultKind::LeafRecover { base, count } => {
                for k in 0..count {
                    self.on_recover(NodeId(base.0 + k));
                }
            }
            FaultKind::ShardCrash(shard) => {
                // Power-cycle the dead head's current slice first: its
                // in-flight dispatches become stale (generation bump) and
                // the nodes rejoin cold, so nothing the dead head started
                // can race the rebuilt control state on the adopters.
                for node in self.runtime.shard_nodes(shard) {
                    let _ = self.sub.nodes[node.index()].crash();
                    self.sub.nodes[node.index()].recover();
                }
                let now = self.sub.now;
                self.runtime.on_shard_fail(&mut self.sub, now, shard);
                // Re-admitted orphans may be buffered for the next cycle.
                let trigger = self.runtime.trigger();
                if self.runtime.queued_jobs() > 0 {
                    self.sub.arm_tick(trigger);
                }
            }
        }
    }

    fn finish(self) -> SimOutcome {
        let sharded = self.runtime.into_outcome();
        let outcome = sharded.merged;
        let mut record = outcome.record;
        // The node model's counters are authoritative (they include work
        // started but lost to crashes, and real eviction totals).
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        let mut gpu_hits = 0;
        let mut evictions = 0;
        let span = record.makespan.as_secs_f64().max(1e-9);
        let mut node_stats = Vec::with_capacity(self.sub.nodes.len());
        for n in &self.sub.nodes {
            cache_hits += n.hits;
            cache_misses += n.misses;
            gpu_hits += n.gpu_hits;
            evictions += n.memory.host().evictions();
            node_stats.push(NodeStats {
                tasks: n.hits + n.misses,
                hits: n.hits,
                misses: n.misses,
                gpu_hits: n.gpu_hits,
                busy: n.busy,
                utilization: (n.busy.as_secs_f64() / span).min(1.0),
            });
        }
        record.cache_hits = cache_hits;
        record.cache_misses = cache_misses;
        record.gpu_hits = gpu_hits;
        record.evictions = evictions;
        SimOutcome {
            record,
            trace: self.sub.trace,
            node_stats,
            incomplete_jobs: outcome.incomplete_jobs,
            overload: outcome.overload,
            per_shard: sharded.per_shard,
        }
    }
}
