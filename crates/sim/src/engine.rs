//! The discrete-event engine: replays a workload through a simulated
//! cluster under one scheduling policy and records the outcome.
//!
//! This is the execution substrate standing in for the paper's two physical
//! testbeds. The paper itself evaluates the schedulers "using simulation as
//! the means for the performance evaluation" (§VI-B); this engine gives the
//! same semantics with a virtual clock:
//!
//! * jobs arrive at their issue times and enter the head node's queue;
//! * the dispatcher invokes the policy on arrival (FCFS family) or every
//!   cycle `ω` (OURS, FS, SF);
//! * assigned tasks queue FIFO on their node; execution time comes from the
//!   cost model against the node's *authoritative* cache (so optimistic
//!   predictions can be wrong);
//! * on every task completion the head tables are corrected (§V-B):
//!   `Estimate[c]` gets the measured I/O time, `Cache` is reconciled with
//!   the real load/evictions, and `Available` is recomputed from the node's
//!   actual backlog;
//! * scheduling cost is measured in *host* wall-clock time around each
//!   `schedule` call — the quantity Table III reports in microseconds.
//!
//! Fault injection (node crash/recovery) exercises the §VI-D claim that
//! rendering continues as long as replicas or reloads are possible.

use crate::event::{EventKind, EventQueue};
use crate::node::SimNode;
use crate::options::{RunOptions, SchedulerChoice};
use std::sync::Arc;
use std::time::Instant;
use vizsched_core::cluster::ClusterSpec;
use vizsched_core::cost::{CostParams, JobTiming};
use vizsched_core::data::{Catalog, DatasetDesc};
use vizsched_core::fxhash::FxHashMap;
use vizsched_core::ids::{JobId, NodeId};
use vizsched_core::job::Job;
use vizsched_core::memory::EvictionPolicy;
use vizsched_core::sched::{Assignment, ScheduleCtx, Scheduler, SchedulerKind, Trigger};
use vizsched_core::time::{SimDuration, SimTime};
use vizsched_metrics::{JobRecord, Probe, RunRecord, TraceEvent};

/// A fault-injection event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// When it happens.
    pub time: SimTime,
    /// The affected node.
    pub node: NodeId,
    /// True for a crash, false for a recovery.
    pub crash: bool,
}

/// Static configuration of one simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The cluster being simulated.
    pub cluster: ClusterSpec,
    /// Cost-model constants.
    pub cost: CostParams,
    /// `Chk_max` for the max-chunk-size decomposition.
    pub chunk_max: u64,
    /// Scheduling cycle `ω` for cycle-based policies.
    pub cycle: SimDuration,
    /// Cache eviction policy on every node (LRU in the paper).
    pub eviction: EvictionPolicy,
    /// Fault injections, if any.
    pub faults: Vec<Fault>,
    /// Record a per-task trace (memory-hungry; tests only).
    pub record_trace: bool,
    /// Amplitude of the deterministic per-task execution-time perturbation
    /// (0.0 = exact cost model; the scenario experiments use 0.05 to model
    /// real render/disk variance).
    pub exec_jitter: f64,
    /// Pre-load chunks round-robin across nodes (up to each quota) before
    /// the run, mirroring the paper's initialization "test run" that also
    /// populates the `Estimate` table. Scenario 1's stated premise is that
    /// "total data ... can be completely cached".
    pub warm_start: bool,
    /// Enable the two-tier memory extension (§VII future work): per-node
    /// video-memory quota in bytes. `None` folds the GPU into the render
    /// constant, as the paper's base model does.
    pub gpu_quota: Option<u64>,
    /// Shared file-server contention: when set, a load that starts while
    /// `k` other loads are in flight cluster-wide runs at `1/(1 + k/c)` of
    /// nominal bandwidth, where `c` is this concurrency capacity (the
    /// number of streams the parallel FS serves at full speed). `None`
    /// models independent per-node disks. The slowdown is fixed at load
    /// start — a first-order approximation of fair-shared bandwidth.
    pub shared_fs_capacity: Option<u32>,
    /// Perturbation seed folded into the per-task execution-jitter hash;
    /// two runs differing only in seed see independent (but each fully
    /// reproducible) noise realizations. Usually set per run via
    /// [`RunOptions::seed`].
    pub jitter_seed: u64,
}

impl SimConfig {
    /// A configuration with no faults and no tracing.
    pub fn new(cluster: ClusterSpec, cost: CostParams, chunk_max: u64) -> Self {
        SimConfig {
            cluster,
            cost,
            chunk_max,
            cycle: SimDuration::from_millis(30),
            eviction: EvictionPolicy::Lru,
            faults: Vec::new(),
            record_trace: false,
            exec_jitter: 0.0,
            warm_start: false,
            gpu_quota: None,
            shared_fs_capacity: None,
            jitter_seed: 0,
        }
    }
}

/// One executed task, as recorded when `record_trace` is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskTrace {
    /// Owning job.
    pub job: JobId,
    /// Task index within the job.
    pub index: u32,
    /// Node that executed it.
    pub node: NodeId,
    /// Start time.
    pub start: SimTime,
    /// Finish time.
    pub finish: SimTime,
    /// True if the chunk was fetched from disk.
    pub miss: bool,
}

/// Per-node execution counters for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Tasks executed.
    pub tasks: u64,
    /// Tasks served from main memory.
    pub hits: u64,
    /// Tasks that read from disk.
    pub misses: u64,
    /// Hits that were GPU-resident (two-tier extension).
    pub gpu_hits: u64,
    /// Total busy time.
    pub busy: SimDuration,
    /// Busy fraction of the makespan, 0–1.
    pub utilization: f64,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The aggregate record consumed by `vizsched-metrics`.
    pub record: RunRecord,
    /// Per-task trace (empty unless `record_trace`).
    pub trace: Vec<TaskTrace>,
    /// Per-node execution counters (load-balance view).
    pub node_stats: Vec<NodeStats>,
    /// Jobs that never completed (should be zero unless nodes stayed down).
    pub incomplete_jobs: usize,
}

/// A workload replayer for one configuration.
#[derive(Clone, Debug)]
pub struct Simulation {
    config: SimConfig,
    datasets: Vec<DatasetDesc>,
}

impl Simulation {
    /// Create a simulation over `datasets`.
    pub fn new(config: SimConfig, datasets: Vec<DatasetDesc>) -> Self {
        Simulation { config, datasets }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run one policy over `jobs` (must be sorted by issue time) under
    /// [`RunOptions`]: label, probe, per-run overrides, `Estimate[c]`
    /// pre-seeding.
    pub fn run_opts(&self, jobs: Vec<Job>, opts: RunOptions) -> SimOutcome {
        let mut config = self.config.clone();
        if let Some(cost) = opts.cost {
            config.cost = cost;
        }
        if let Some(cycle) = opts.cycle {
            config.cycle = cycle;
        }
        if let Some(eviction) = opts.eviction {
            config.eviction = eviction;
        }
        if let Some(faults) = opts.faults {
            config.faults = faults;
        }
        if let Some(jitter) = opts.exec_jitter {
            config.exec_jitter = jitter;
        }
        if let Some(warm) = opts.warm_start {
            config.warm_start = warm;
        }
        if let Some(trace) = opts.record_trace {
            config.record_trace = trace;
        }
        if let Some(seed) = opts.seed {
            config.jitter_seed = seed;
            if let EvictionPolicy::Random { seed: base } = config.eviction {
                config.eviction = EvictionPolicy::Random {
                    seed: base.wrapping_add(seed),
                };
            }
        }
        let scheduler = match opts.scheduler {
            SchedulerChoice::Kind(kind) => kind.build(config.cycle),
            SchedulerChoice::Instance(instance) => instance,
        };
        let policy = scheduler.decomposition(config.chunk_max, config.cluster.len() as u32);
        let catalog = Catalog::new(self.datasets.clone(), policy);
        let mut engine = Engine::new(&config, catalog, scheduler, &opts.label, opts.probe);
        for (chunk, estimate) in opts.initial_estimates {
            engine.tables.estimate.record(chunk, estimate);
        }
        engine.run(jobs)
    }

    /// Run `kind` over `jobs` (must be sorted by issue time).
    #[deprecated(note = "use `run_opts(jobs, RunOptions::new(kind).label(scenario))`")]
    pub fn run(&self, kind: SchedulerKind, jobs: Vec<Job>, scenario: &str) -> SimOutcome {
        self.run_opts(jobs, RunOptions::new(kind).label(scenario))
    }

    /// Run an explicit scheduler instance (for parameter ablations).
    #[deprecated(note = "use `run_opts(jobs, RunOptions::with_scheduler(s).label(scenario))`")]
    pub fn run_with(
        &self,
        scheduler: Box<dyn Scheduler>,
        jobs: Vec<Job>,
        scenario: &str,
    ) -> SimOutcome {
        self.run_opts(jobs, RunOptions::with_scheduler(scheduler).label(scenario))
    }
}

struct JobState {
    record: JobRecord,
    remaining: u32,
    max_finish: SimTime,
}

/// The probe view of one commitment: the placement plus the predictions it
/// was based on.
fn assignment_event(now: SimTime, a: &Assignment) -> TraceEvent {
    TraceEvent::Assignment {
        now,
        job: a.task.job,
        task: a.task.index,
        chunk: a.task.chunk,
        node: a.node,
        predicted_start: a.predicted_start,
        predicted_exec: a.predicted_exec,
        interactive: a.task.interactive,
    }
}

struct Engine<'a> {
    config: &'a SimConfig,
    catalog: Catalog,
    scheduler: Box<dyn Scheduler>,
    scenario: String,
    tables: vizsched_core::tables::HeadTables,
    nodes: Vec<SimNode>,
    events: EventQueue,
    /// Arrival buffer for cycle-triggered policies.
    buffer: Vec<Job>,
    tick_armed: bool,
    now: SimTime,
    jobs: FxHashMap<JobId, JobState>,
    job_order: Vec<JobId>,
    trace: Vec<TaskTrace>,
    sched_wall_micros: u64,
    sched_invocations: u64,
    jobs_scheduled: u64,
    makespan: SimTime,
    /// Disk loads currently in flight (shared-FS contention input).
    loads_in_flight: u32,
    probe: Arc<dyn Probe>,
}

impl<'a> Engine<'a> {
    fn new(
        config: &'a SimConfig,
        catalog: Catalog,
        scheduler: Box<dyn Scheduler>,
        scenario: &str,
        probe: Arc<dyn Probe>,
    ) -> Self {
        let tables = match config.gpu_quota {
            Some(gpu) => vizsched_core::tables::HeadTables::with_gpu_tier(
                &config.cluster,
                gpu,
                config.eviction,
            ),
            None => {
                vizsched_core::tables::HeadTables::with_eviction(&config.cluster, config.eviction)
            }
        };
        let nodes = config
            .cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(k, spec)| {
                let mut node = SimNode::new(
                    NodeId(k as u32),
                    spec.mem_quota,
                    config.eviction,
                    spec.disk_scale,
                    config.gpu_quota,
                );
                node.jitter_seed = config.jitter_seed;
                node
            })
            .collect();
        Engine {
            config,
            catalog,
            scheduler,
            scenario: scenario.to_string(),
            tables,
            nodes,
            events: EventQueue::new(),
            buffer: Vec::new(),
            tick_armed: false,
            now: SimTime::ZERO,
            jobs: FxHashMap::default(),
            job_order: Vec::new(),
            trace: Vec::new(),
            sched_wall_micros: 0,
            sched_invocations: 0,
            jobs_scheduled: 0,
            makespan: SimTime::ZERO,
            loads_in_flight: 0,
            probe,
        }
    }

    fn run(&mut self, jobs: Vec<Job>) -> SimOutcome {
        if self.config.warm_start {
            self.warm_start();
        }
        // Seed the event queue with arrivals and faults.
        let mut last = SimTime::ZERO;
        for job in jobs {
            assert!(job.issue_time >= last, "jobs must be sorted by issue time");
            last = job.issue_time;
            self.events.push(job.issue_time, EventKind::Arrival(job));
        }
        for fault in &self.config.faults {
            let kind = if fault.crash {
                EventKind::NodeCrash(fault.node)
            } else {
                EventKind::NodeRecover(fault.node)
            };
            self.events.push(fault.time, kind);
        }

        while let Some(event) = self.events.pop() {
            self.now = event.time;
            match event.kind {
                EventKind::Arrival(job) => self.on_arrival(job),
                EventKind::Tick => self.on_tick(),
                EventKind::TaskDone { node, generation } => self.on_task_done(node, generation),
                EventKind::NodeCrash(node) => self.on_crash(node),
                EventKind::NodeRecover(node) => self.on_recover(node),
            }
        }

        self.finish()
    }

    /// The paper's initialization "test run": chunks are distributed
    /// round-robin over the nodes until each node's quota is full, and the
    /// head node's `Cache` table reflects the placement. (The `Estimate`
    /// table needs no seeding — its cost-model fallback is the test-run
    /// estimate.)
    fn warm_start(&mut self) {
        let p = self.nodes.len();
        let mut i = 0usize;
        for dataset in self.catalog.datasets() {
            for chunk in self.catalog.chunks_of(dataset.id) {
                let node = NodeId((i % p) as u32);
                i += 1;
                let mem = &mut self.nodes[node.index()].memory;
                let host = mem.host();
                if host.used() + chunk.bytes <= host.quota() && !mem.host_resident(chunk.id) {
                    mem.access(chunk.id, chunk.bytes);
                    self.tables.cache.record_load(node, chunk.id, chunk.bytes);
                    if let Some(gpu) = &mut self.tables.gpu_cache {
                        gpu.record_load(node, chunk.id, chunk.bytes);
                    }
                    if self.probe.enabled() {
                        self.probe.on_event(&TraceEvent::CacheLoad {
                            now: SimTime::ZERO,
                            node,
                            chunk: chunk.id,
                        });
                    }
                }
            }
        }
    }

    fn on_arrival(&mut self, job: Job) {
        let state = JobState {
            record: JobRecord {
                id: job.id,
                kind: job.kind,
                dataset: job.dataset,
                timing: JobTiming::issued_at(job.issue_time),
                tasks: self.catalog.task_count(job.dataset),
                misses: 0,
            },
            remaining: self.catalog.task_count(job.dataset),
            max_finish: SimTime::ZERO,
        };
        self.jobs.insert(job.id, state);
        self.job_order.push(job.id);

        match self.scheduler.trigger() {
            Trigger::OnArrival => self.invoke(vec![job]),
            Trigger::Cycle(_) => {
                self.buffer.push(job);
                self.arm_tick();
            }
        }
    }

    fn on_tick(&mut self) {
        self.tick_armed = false;
        let jobs = std::mem::take(&mut self.buffer);
        self.invoke(jobs);
        if self.scheduler.has_deferred() {
            self.arm_tick_after();
        }
    }

    fn on_task_done(&mut self, node: NodeId, generation: u32) {
        {
            let n = &mut self.nodes[node.index()];
            if n.crashed || n.generation != generation {
                return; // stale completion from before a crash
            }
        }
        let done = self.nodes[node.index()].complete();
        if done.miss {
            self.loads_in_flight = self.loads_in_flight.saturating_sub(1);
        }
        self.makespan = self.makespan.max(done.finish);
        let tracing = self.probe.enabled();

        // Job bookkeeping.
        let task = done.assignment.task;
        if tracing {
            self.probe.on_event(&TraceEvent::TaskDone {
                now: self.now,
                job: task.job,
                task: task.index,
                chunk: task.chunk,
                node,
                started: done.started,
                exec: done.finish.saturating_since(done.started),
                io: done.io,
                miss: done.miss,
            });
        }
        if let Some(state) = self.jobs.get_mut(&task.job) {
            state.remaining -= 1;
            state.max_finish = state.max_finish.max(done.finish);
            if done.miss {
                state.record.misses += 1;
            }
            if state.remaining == 0 {
                state.record.timing.record_finish(state.max_finish);
                if tracing {
                    self.probe.on_event(&TraceEvent::JobDone {
                        now: self.now,
                        job: task.job,
                        latency: state.max_finish.saturating_since(state.record.timing.issue),
                    });
                }
            }
        }
        if self.config.record_trace {
            self.trace.push(TaskTrace {
                job: task.job,
                index: task.index,
                node,
                start: done.started,
                finish: done.finish,
                miss: done.miss,
            });
        }

        // §V-B corrections: estimate from the measurement, cache from the
        // node's authoritative load/evictions, available from the real
        // backlog.
        if done.miss {
            if tracing {
                let old = self
                    .tables
                    .estimate
                    .get(task.chunk, task.bytes, &self.config.cost);
                self.probe.on_event(&TraceEvent::EstimateCorrection {
                    now: self.now,
                    chunk: task.chunk,
                    old,
                    new: done.io,
                });
                for &victim in &done.evicted {
                    self.probe.on_event(&TraceEvent::CacheEvict {
                        now: self.now,
                        node,
                        chunk: victim,
                    });
                }
                self.probe.on_event(&TraceEvent::CacheLoad {
                    now: self.now,
                    node,
                    chunk: task.chunk,
                });
            }
            self.tables.estimate.record(task.chunk, done.io);
            self.tables
                .cache
                .reconcile_load(node, task.chunk, task.bytes, &done.evicted);
        }
        if let Some(gpu) = &mut self.tables.gpu_cache {
            if done.tier != vizsched_core::tiered::Tier::Gpu {
                // The node pulled the chunk onto its GPU; mirror it.
                let mut evicted = done.gpu_evicted.clone();
                evicted.extend_from_slice(&done.evicted);
                gpu.reconcile_load(node, task.chunk, task.bytes, &evicted);
            }
        }
        let backlog = self.nodes[node.index()].predicted_backlog;
        if tracing {
            self.probe.on_event(&TraceEvent::AvailableCorrection {
                now: self.now,
                node,
                old: self.tables.available.get(node),
                new: self.now + backlog,
            });
        }
        self.tables.available.correct(node, self.now + backlog);

        self.start_node(node);

        // Deferred work may now fit: make sure a cycle is coming.
        if matches!(self.scheduler.trigger(), Trigger::Cycle(_)) && self.scheduler.has_deferred() {
            self.arm_tick();
        }
    }

    fn on_crash(&mut self, node: NodeId) {
        let lost = self.nodes[node.index()].crash();
        self.tables.mark_down(node);
        if self.probe.enabled() {
            self.probe.on_event(&TraceEvent::NodeDown {
                now: self.now,
                node,
                lost_tasks: lost.len(),
            });
        }
        if self.tables.live_nodes().next().is_none() {
            // Whole cluster down: the lost work is gone for good.
            return;
        }
        // Re-place the lost tasks on live nodes, locality-aware — the
        // fault-tolerance path of §VI-D.
        let mut ctx = ScheduleCtx {
            now: self.now,
            tables: &mut self.tables,
            catalog: &self.catalog,
            cost: &self.config.cost,
        };
        let reassigned: Vec<Assignment> = lost
            .into_iter()
            .map(|a| {
                let node = ctx.earliest_node_with_locality(a.task.chunk, a.task.bytes);
                ctx.commit(a.task, node, a.group)
            })
            .collect();
        if self.probe.enabled() {
            for a in &reassigned {
                self.probe.on_event(&assignment_event(self.now, a));
            }
        }
        self.dispatch(reassigned);
    }

    fn on_recover(&mut self, node: NodeId) {
        self.nodes[node.index()].recover();
        self.tables.mark_up(node, self.now);
        if self.probe.enabled() {
            self.probe.on_event(&TraceEvent::NodeUp {
                now: self.now,
                node,
            });
        }
    }

    fn arm_tick(&mut self) {
        if self.tick_armed {
            return;
        }
        let Trigger::Cycle(cycle) = self.scheduler.trigger() else {
            return;
        };
        let omega = cycle.as_micros().max(1);
        let next = self.now.as_micros().div_ceil(omega) * omega;
        self.tick_armed = true;
        self.events
            .push(SimTime::from_micros(next), EventKind::Tick);
    }

    /// Arm the *next* cycle boundary strictly after `now` (used from within
    /// a tick so the chain advances).
    fn arm_tick_after(&mut self) {
        if self.tick_armed {
            return;
        }
        let Trigger::Cycle(cycle) = self.scheduler.trigger() else {
            return;
        };
        let omega = cycle.as_micros().max(1);
        let next = (self.now.as_micros() / omega + 1) * omega;
        self.tick_armed = true;
        self.events
            .push(SimTime::from_micros(next), EventKind::Tick);
    }

    fn invoke(&mut self, jobs: Vec<Job>) {
        let tracing = self.probe.enabled();
        if tracing {
            self.probe.on_event(&TraceEvent::CycleStart {
                now: self.now,
                queued: jobs.len(),
            });
        }
        self.jobs_scheduled += jobs.len() as u64;
        self.sched_invocations += 1;
        let mut ctx = ScheduleCtx {
            now: self.now,
            tables: &mut self.tables,
            catalog: &self.catalog,
            cost: &self.config.cost,
        };
        let t0 = Instant::now();
        let assignments = self.scheduler.schedule(&mut ctx, jobs);
        let wall_micros = t0.elapsed().as_micros() as u64;
        self.sched_wall_micros += wall_micros;
        if tracing {
            for a in &assignments {
                self.probe.on_event(&assignment_event(self.now, a));
            }
            self.probe.on_event(&TraceEvent::CycleEnd {
                now: self.now,
                assignments: assignments.len(),
                wall_micros,
            });
        }
        self.dispatch(assignments);
    }

    fn dispatch(&mut self, assignments: Vec<Assignment>) {
        for a in assignments {
            let node = a.node;
            self.nodes[node.index()].enqueue(a);
            if self.nodes[node.index()].is_idle() {
                self.start_node(node);
            }
        }
    }

    fn start_node(&mut self, node: NodeId) {
        // Shared-FS contention: loads starting now run slower the more
        // loads are already streaming from the file server.
        let contention = match self.config.shared_fs_capacity {
            Some(capacity) if capacity > 0 => 1.0 + self.loads_in_flight as f64 / capacity as f64,
            _ => 1.0,
        };
        let n = &mut self.nodes[node.index()];
        if !n.is_idle() || n.crashed {
            return;
        }
        let Some(running) = n.start_next_contended(
            self.now,
            &self.config.cost,
            self.config.exec_jitter,
            contention,
        ) else {
            return;
        };
        if running.miss {
            self.loads_in_flight += 1;
        }
        let (job, finish, generation) = (running.assignment.task.job, running.finish, n.generation);
        self.events
            .push(finish, EventKind::TaskDone { node, generation });
        if let Some(state) = self.jobs.get_mut(&job) {
            state.record.timing.record_start(self.now);
        }
    }

    fn finish(&mut self) -> SimOutcome {
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        let mut gpu_hits = 0;
        let mut evictions = 0;
        let span = self.makespan.as_secs_f64().max(1e-9);
        let mut node_stats = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            cache_hits += n.hits;
            cache_misses += n.misses;
            gpu_hits += n.gpu_hits;
            evictions += n.memory.host().evictions();
            node_stats.push(NodeStats {
                tasks: n.hits + n.misses,
                hits: n.hits,
                misses: n.misses,
                gpu_hits: n.gpu_hits,
                busy: n.busy,
                utilization: (n.busy.as_secs_f64() / span).min(1.0),
            });
        }
        let mut jobs = Vec::with_capacity(self.job_order.len());
        let mut incomplete = 0;
        for id in &self.job_order {
            let state = &self.jobs[id];
            if state.remaining > 0 {
                incomplete += 1;
            }
            jobs.push(state.record);
        }
        SimOutcome {
            record: RunRecord {
                scheduler: self.scheduler.name().to_string(),
                scenario: self.scenario.clone(),
                jobs,
                cache_hits,
                cache_misses,
                gpu_hits,
                evictions,
                sched_wall_micros: self.sched_wall_micros,
                sched_invocations: self.sched_invocations,
                jobs_scheduled: self.jobs_scheduled,
                makespan: self.makespan,
            },
            trace: std::mem::take(&mut self.trace),
            node_stats,
            incomplete_jobs: incomplete,
        }
    }
}
