//! Builder-style run configuration: everything one `Simulation::run_opts`
//! invocation can vary without rebuilding the simulation.
//!
//! [`SimConfig`](crate::SimConfig) describes the *substrate* — cluster,
//! cost model, decomposition. [`RunOptions`] describes one *run* over that
//! substrate: which policy, under what label, observed by which probe,
//! with optional per-run overrides (cycle, eviction, fault plan, jitter,
//! seed) and an `Estimate[c]` pre-seed for prediction-feedback
//! experiments.
//!
//! ```
//! use std::sync::Arc;
//! use vizsched_core::prelude::*;
//! use vizsched_metrics::CollectingProbe;
//! use vizsched_sim::RunOptions;
//!
//! let probe = Arc::new(CollectingProbe::new());
//! let opts = RunOptions::new(SchedulerKind::Ours)
//!     .label("traced")
//!     .exec_jitter(0.05)
//!     .warm_start(true)
//!     .probe(probe.clone());
//! assert_eq!(opts.label_str(), "traced");
//! ```

use crate::engine::Fault;
use std::sync::Arc;
use vizsched_core::cost::CostParams;
use vizsched_core::data::Catalog;
use vizsched_core::ids::ChunkId;
use vizsched_core::memory::EvictionPolicy;
use vizsched_core::sched::{Scheduler, SchedulerKind};
use vizsched_core::time::{SimDuration, SimTime};
use vizsched_metrics::{NoopProbe, Probe};
use vizsched_runtime::{FaultPlan, OverloadPolicy};

/// The policy a run executes: a named kind (built against the effective
/// cycle `ω`) or a pre-built instance (parameter ablations).
pub enum SchedulerChoice {
    /// Build one of the paper's policies by name.
    Kind(SchedulerKind),
    /// Use this exact instance.
    Instance(Box<dyn Scheduler>),
}

impl std::fmt::Debug for SchedulerChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerChoice::Kind(kind) => write!(f, "Kind({kind:?})"),
            SchedulerChoice::Instance(s) => write!(f, "Instance({})", s.name()),
        }
    }
}

/// Options for one simulation run. Construct with [`RunOptions::new`] (a
/// policy by name) or [`RunOptions::with_scheduler`] (an explicit
/// instance), then chain overrides.
pub struct RunOptions {
    pub(crate) scheduler: SchedulerChoice,
    pub(crate) label: String,
    pub(crate) probe: Arc<dyn Probe>,
    pub(crate) cost: Option<CostParams>,
    pub(crate) cycle: Option<SimDuration>,
    pub(crate) eviction: Option<EvictionPolicy>,
    pub(crate) faults: Option<Vec<Fault>>,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) exec_jitter: Option<f64>,
    pub(crate) warm_start: Option<bool>,
    pub(crate) record_trace: Option<bool>,
    pub(crate) seed: Option<u64>,
    pub(crate) initial_estimates: Vec<(ChunkId, SimDuration)>,
    pub(crate) catalog: Option<Catalog>,
    pub(crate) overload: OverloadPolicy,
    pub(crate) shards: usize,
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("scheduler", &self.scheduler)
            .field("label", &self.label)
            .field("probe_enabled", &self.probe.enabled())
            .field("cost", &self.cost)
            .field("cycle", &self.cycle)
            .field("eviction", &self.eviction)
            .field("faults", &self.faults)
            .field("fault_plan", &self.fault_plan)
            .field("exec_jitter", &self.exec_jitter)
            .field("warm_start", &self.warm_start)
            .field("record_trace", &self.record_trace)
            .field("seed", &self.seed)
            .field("initial_estimates", &self.initial_estimates.len())
            .field("catalog_override", &self.catalog.is_some())
            .field("overload", &self.overload)
            .field("shards", &self.shards)
            .finish()
    }
}

impl RunOptions {
    /// Run one of the paper's policies, instantiated against the run's
    /// effective cycle `ω`.
    pub fn new(kind: SchedulerKind) -> Self {
        Self::with_choice(SchedulerChoice::Kind(kind))
    }

    /// Run an explicit scheduler instance (parameter ablations).
    pub fn with_scheduler(scheduler: Box<dyn Scheduler>) -> Self {
        Self::with_choice(SchedulerChoice::Instance(scheduler))
    }

    fn with_choice(scheduler: SchedulerChoice) -> Self {
        RunOptions {
            scheduler,
            label: String::new(),
            probe: Arc::new(NoopProbe),
            cost: None,
            cycle: None,
            eviction: None,
            faults: None,
            fault_plan: None,
            exec_jitter: None,
            warm_start: None,
            record_trace: None,
            seed: None,
            initial_estimates: Vec::new(),
            catalog: None,
            overload: OverloadPolicy::default(),
            shards: 1,
        }
    }

    /// Scenario label recorded on the run's `RunRecord`.
    pub fn label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Attach a probe; every scheduling decision, completion, and table
    /// correction is reported to it. Defaults to
    /// [`NoopProbe`], which costs nothing.
    pub fn probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = probe;
        self
    }

    /// Override the cost-model constants for this run.
    pub fn cost(mut self, cost: CostParams) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Override the scheduling cycle `ω` for this run.
    pub fn cycle(mut self, cycle: SimDuration) -> Self {
        self.cycle = Some(cycle);
        self
    }

    /// Override the per-node eviction policy for this run.
    pub fn eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = Some(eviction);
        self
    }

    /// Replace the fault-injection plan for this run.
    pub fn faults(mut self, faults: Vec<Fault>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Install a seedable [`FaultPlan`] covering the full taxonomy —
    /// node crash/respawn, slow-node degrade/restore, correlated leaf
    /// outage, shard-head crash. The live service executes the same plan
    /// with the same semantics, so any chaos run replays bit-identically
    /// in the sim.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Override the execution-jitter amplitude for this run.
    pub fn exec_jitter(mut self, amplitude: f64) -> Self {
        self.exec_jitter = Some(amplitude);
        self
    }

    /// Override whether caches are pre-populated round-robin before the run.
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = Some(on);
        self
    }

    /// Override whether a per-task `TaskTrace` is recorded.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = Some(on);
        self
    }

    /// Perturbation seed: folded into the deterministic per-task jitter
    /// hash (and, under `EvictionPolicy::Random`, into the eviction
    /// stream), so the same workload can be replayed under independent
    /// noise realizations. Runs with equal seeds are bit-identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Pre-seed `Estimate[c]` for one chunk — the paper's "test run"
    /// initialization, or a deliberately wrong prior for
    /// prediction-feedback experiments.
    pub fn initial_estimate(mut self, chunk: ChunkId, estimate: SimDuration) -> Self {
        self.initial_estimates.push((chunk, estimate));
        self
    }

    /// Replace the catalog for this run instead of decomposing the
    /// simulation's datasets — e.g. to replay the exact physical bricking
    /// of a live `ChunkStore` for simulator-vs-service parity checks.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Apply an overload-control policy to the head runtime for this run:
    /// admission caps, per-job deadlines, stale-frame coalescing, and batch
    /// anti-starvation escalation. The default (inactive) policy admits
    /// everything, preserving historical behavior bit-for-bit.
    pub fn overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = policy;
        self
    }

    /// Split the cluster into `n` shards behind the consistent-hash
    /// routing tier: each shard runs its own head-node cycle loop over a
    /// leaf-aligned slice of the nodes, and jobs route by dataset.
    /// `n <= 1` (the default) runs the paper's single head node,
    /// bit-identical to an unsharded build. Sharded runs build one
    /// scheduler per shard, so they require a named policy
    /// ([`RunOptions::new`]), not a pre-built instance.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Pre-seed `Estimate[c]` for many chunks at once.
    pub fn initial_estimates(
        mut self,
        estimates: impl IntoIterator<Item = (ChunkId, SimDuration)>,
    ) -> Self {
        self.initial_estimates.extend(estimates);
        self
    }

    /// The configured label (handy in assertions and logs).
    pub fn label_str(&self) -> &str {
        &self.label
    }
}

/// Convenience: fault plan entries without struct-literal noise.
impl Fault {
    /// A crash of `node` at `time`.
    pub fn crash_at(time: SimTime, node: vizsched_core::ids::NodeId) -> Fault {
        Fault {
            time,
            node,
            crash: true,
        }
    }

    /// A recovery of `node` at `time`.
    pub fn recover_at(time: SimTime, node: vizsched_core::ids::NodeId) -> Fault {
        Fault {
            time,
            node,
            crash: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizsched_core::ids::{DatasetId, NodeId};

    #[test]
    fn builder_accumulates_overrides() {
        let opts = RunOptions::new(SchedulerKind::Fs)
            .label("x")
            .cycle(SimDuration::from_millis(10))
            .eviction(EvictionPolicy::Lru)
            .exec_jitter(0.1)
            .warm_start(true)
            .record_trace(true)
            .seed(7)
            .cost(CostParams::default())
            .faults(vec![Fault::crash_at(SimTime::from_secs(1), NodeId(0))])
            .initial_estimate(ChunkId::new(DatasetId(0), 0), SimDuration::from_millis(5));
        assert_eq!(opts.label_str(), "x");
        assert_eq!(opts.cycle, Some(SimDuration::from_millis(10)));
        assert_eq!(opts.seed, Some(7));
        assert_eq!(opts.initial_estimates.len(), 1);
        assert_eq!(opts.faults.as_ref().map(Vec::len), Some(1));
        // Debug is implemented by hand (trait objects aren't Debug).
        let dbg = format!("{opts:?}");
        assert!(dbg.contains("Kind(Fs)"), "{dbg}");
    }

    #[test]
    fn default_probe_is_disabled() {
        let opts = RunOptions::new(SchedulerKind::Ours);
        assert!(!opts.probe.enabled());
    }
}
