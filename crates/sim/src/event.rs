//! The event queue: a min-heap ordered by `(time, sequence)` so that
//! simultaneous events fire in insertion order and every run is
//! bit-for-bit reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vizsched_core::ids::NodeId;
use vizsched_core::job::Job;
use vizsched_core::time::SimTime;
use vizsched_runtime::FaultKind;

/// What happens when an event fires.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// A job enters the head node's queue.
    Arrival(Job),
    /// A scheduling-cycle boundary for cycle-based policies.
    Tick,
    /// The running task on `node` completes. `generation` guards against
    /// stale completions after a crash wiped the node's state.
    TaskDone {
        /// The node whose running task finished.
        node: NodeId,
        /// The node's crash generation at the time the task started.
        generation: u32,
    },
    /// Fault injection: the node dies, losing its memory and queue.
    NodeCrash(NodeId),
    /// Fault injection: the node rejoins with a cold cache.
    NodeRecover(NodeId),
    /// A scheduled [`FaultPlan`](vizsched_runtime::FaultPlan) entry fires:
    /// the full taxonomy (crash, respawn, degrade, restore, leaf outage,
    /// shard-head crash), traced as `fault_injected` so a chaos run can be
    /// replayed and audited.
    PlanFault(FaultKind),
}

/// A scheduled event.
#[derive(Clone, Debug)]
pub struct Event {
    /// When it fires.
    pub time: SimTime,
    /// Tie-breaker: insertion order.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Peek at the earliest event time.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), EventKind::Tick);
        q.push(SimTime::from_secs(1), EventKind::Tick);
        q.push(SimTime::from_secs(2), EventKind::Tick);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros() / 1_000_000)
            .collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(t, EventKind::NodeCrash(NodeId(0)));
        q.push(t, EventKind::NodeCrash(NodeId(1)));
        q.push(t, EventKind::NodeCrash(NodeId(2)));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::NodeCrash(n) => n.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn next_time_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert!(q.next_time().is_none());
        q.push(SimTime::from_secs(5), EventKind::Tick);
        assert_eq!(q.next_time(), Some(SimTime::from_secs(5)));
        assert_eq!(q.len(), 1);
    }
}
