//! # vizsched-workload
//!
//! Seeded multi-user workload generation for vizsched experiments:
//! interactive action streams (a render request every 30 ms per active
//! user) mixed with batch submissions, the four scenario configurations of
//! the paper's Table II, and overload-burst overlays for admission-control
//! experiments.
//!
//! The [`record`] module adds the scenario record/replay plane: a
//! versioned JSONL [`ScenarioRecord`] capturing any live or simulated
//! run's request stream (written by the [`RecordingProbe`]), and
//! [`Scenario::from_record`] to replay it bit-identically in the
//! simulator. The [`traffic`] module layers five non-Poisson traffic
//! shapes on the same format: diurnal curves, flash crowds, camera-path
//! locality, mixed GPU tiers, and time-varying heterogeneous datasets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod burst;
pub mod generator;
pub mod record;
pub mod scenario;
pub mod traffic;

pub use burst::{BurstSpec, BURST_ACTION_OFFSET, BURST_USER_OFFSET};
pub use generator::{ActionBehavior, BatchModel, DatasetChoice, InteractiveModel, WorkloadSpec};
pub use record::{
    FaultLine, RecordError, RecordHeader, RecordingProbe, ScenarioRecord, SessionKind, SessionLine,
    RECORD_KINDS, RECORD_VERSION,
};
pub use scenario::{ReplayPlan, Scenario};
pub use traffic::{
    heterogeneous_catalog, mixed_tier_cluster, CameraPathSpec, DiurnalSpec, FlashCrowdSpec,
    MixedTiersSpec, TimeVaryingSpec, TrafficShape, CROWD_USER_OFFSET,
};
