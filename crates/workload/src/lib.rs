//! # vizsched-workload
//!
//! Seeded multi-user workload generation for vizsched experiments:
//! interactive action streams (a render request every 30 ms per active
//! user) mixed with batch submissions, the four scenario configurations of
//! the paper's Table II, and overload-burst overlays for admission-control
//! experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod burst;
pub mod generator;
pub mod scenario;

pub use burst::{BurstSpec, BURST_ACTION_OFFSET, BURST_USER_OFFSET};
pub use generator::{ActionBehavior, BatchModel, DatasetChoice, InteractiveModel, WorkloadSpec};
pub use scenario::Scenario;
