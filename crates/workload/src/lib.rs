//! # vizsched-workload
//!
//! Seeded multi-user workload generation for vizsched experiments:
//! interactive action streams (a render request every 30 ms per active
//! user) mixed with batch submissions, and the four scenario
//! configurations of the paper's Table II.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod generator;
pub mod scenario;

pub use generator::{ActionBehavior, BatchModel, DatasetChoice, InteractiveModel, WorkloadSpec};
pub use scenario::Scenario;
