//! Non-Poisson traffic shapes: diurnal load curves, flash crowds pinned
//! to one hot dataset, camera-path locality, mixed GPU tiers, and
//! time-varying datasets with heterogeneous bricking.
//!
//! Every robustness result before this module was made against
//! Poisson-ish sessions over uniformly-bricked volumes. Real deployments
//! are nastier in specific, nameable ways, and each shape here models one
//! of them as a deterministic, seeded job-stream generator. All five
//! compose with the scenario record plane: [`TrafficShape::to_record`]
//! serializes a shape's stream onto the same versioned JSONL format that
//! live runs record to, so a synthetic flash crowd and a captured
//! production incident replay through the identical pipeline.
//!
//! The shapes:
//!
//! * [`DiurnalSpec`] — the active-user count follows a raised-cosine
//!   day curve between a trough and a peak, so schedulers see slow
//!   ramps, a sustained plateau, and slow drains instead of a constant
//!   offered load.
//! * [`FlashCrowdSpec`] — a steady background population, then a crowd
//!   piles onto one hot dataset over a short ramp (a release
//!   announcement, a shared link). Exercises admission control and
//!   `Cache[c]` sharing on the hot set at once.
//! * [`CameraPathSpec`] — groups of adjacent users walk adjacent
//!   datasets on a staggered guided tour; neighbours overlap on the
//!   same data most of the time, which is exactly the `Cache[c]`
//!   affinity the paper's placement term rewards.
//! * [`MixedTiersSpec`] — a standard session workload over a cluster
//!   whose nodes have heterogeneous disk-speed factors
//!   ([`mixed_tier_cluster`]), modelling mixed GPU/storage generations
//!   in one pool.
//! * [`TimeVaryingSpec`] — every viewer follows the *current* timestep
//!   of a streaming dataset; when a new timestep lands, the previous
//!   one's cached chunks all go dead at once (the cache-invalidation
//!   storm of in-situ visualization). Pair with
//!   [`heterogeneous_catalog`] for non-uniform per-chunk costs.

use crate::arrival::uniform_duration;
use crate::generator::{ActionBehavior, BatchModel, DatasetChoice, InteractiveModel, WorkloadSpec};
use crate::record::{RecordHeader, ScenarioRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vizsched_core::cluster::{ClusterSpec, NodeSpec};
use vizsched_core::data::{Catalog, ChunkDesc, DatasetDesc};
use vizsched_core::ids::{ActionId, ChunkId, DatasetId, JobId, UserId};
use vizsched_core::job::{FrameParams, Job, JobKind};
use vizsched_core::time::{SimDuration, SimTime};

/// User-id offset for flash-crowd arrivals, keeping them disjoint from
/// background slots (and from the burst overlay's 10 000 range).
pub const CROWD_USER_OFFSET: u32 = 20_000;

type Proto = Vec<(SimTime, JobKind, DatasetId, FrameParams)>;

/// Emit one action's periodic request stream, with the generator's
/// phase-plus-jitter discipline (±10 % of the period, never past `end`).
#[allow(clippy::too_many_arguments)]
fn emit_action(
    proto: &mut Proto,
    seed: u64,
    user: UserId,
    action: ActionId,
    dataset: DatasetId,
    start: SimTime,
    end: SimTime,
    period: SimDuration,
    frame0: u32,
) {
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(action.0),
    );
    let phase = uniform_duration(&mut rng, SimDuration::ZERO, period);
    let max_jitter = period / 10;
    let mut nominal = start + phase;
    let mut frame = frame0;
    while nominal < end {
        let t = (nominal + uniform_duration(&mut rng, SimDuration::ZERO, max_jitter)).min(end);
        let params = FrameParams {
            azimuth: frame as f32 * 0.02,
            ..FrameParams::default()
        };
        proto.push((t, JobKind::Interactive { user, action }, dataset, params));
        nominal += period;
        frame += 1;
    }
}

/// Sort a proto stream by issue time (stable on ties) and assign dense
/// arrival-order job ids — the invariant every substrate expects.
fn assemble(mut proto: Proto) -> Vec<Job> {
    proto.sort_by_key(|(t, ..)| *t);
    proto
        .into_iter()
        .enumerate()
        .map(|(i, (issue_time, kind, dataset, frame))| Job {
            id: JobId(i as u64),
            kind,
            dataset,
            issue_time,
            frame,
        })
        .collect()
}

/// A diurnal load curve: the number of active user slots follows a
/// raised cosine between `trough_frac · slots_peak` (at t = 0) and
/// `slots_peak` (half a `curve_period` later).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiurnalSpec {
    /// Active slots at the peak of the curve.
    pub slots_peak: u32,
    /// Fraction of the peak still active in the trough (0.0–1.0).
    pub trough_frac: f64,
    /// One full day of the curve (trough → peak → trough).
    pub curve_period: SimDuration,
    /// Request period within an action.
    pub period: SimDuration,
    /// Run length.
    pub length: SimDuration,
    /// Datasets to spread actions over.
    pub dataset_count: u32,
    /// Generator seed.
    pub seed: u64,
}

impl DiurnalSpec {
    /// The carrier in `[trough_frac, 1]` at time `t`: the fraction of
    /// the peak population that is active.
    pub fn carrier(&self, t: SimDuration) -> f64 {
        let phase = t.as_secs_f64() / self.curve_period.as_secs_f64();
        let wave = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
        self.trough_frac + (1.0 - self.trough_frac) * wave
    }

    /// Generate the stream: slot `i` is active whenever the carrier
    /// exceeds `(i + 0.5) / slots_peak`, so the active population tracks
    /// the curve; each activation window is one action on a
    /// seed-determined dataset.
    pub fn generate(&self) -> Vec<Job> {
        assert!(self.dataset_count > 0, "need at least one dataset");
        assert!(self.slots_peak > 0, "need at least one slot");
        let mut proto = Proto::new();
        let mut next_action = 0u64;
        let p = self.curve_period.as_secs_f64();
        let length = self.length.as_secs_f64();
        for slot in 0..self.slots_peak {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0xd1a7 + slot as u64));
            let threshold = (slot as f64 + 0.5) / self.slots_peak as f64;
            // carrier(t) >= threshold  ⟺  cos(2πt/P) <= c
            let c = if (1.0 - self.trough_frac).abs() < f64::EPSILON {
                if threshold <= self.trough_frac {
                    1.0
                } else {
                    -2.0
                }
            } else {
                1.0 - 2.0 * (threshold - self.trough_frac) / (1.0 - self.trough_frac)
            };
            if c >= 1.0 {
                // Always active: one action for the whole run.
                let dataset =
                    DatasetId(DatasetChoice::Uniform.sample(&mut rng, self.dataset_count));
                let action = ActionId(next_action);
                next_action += 1;
                emit_action(
                    &mut proto,
                    self.seed,
                    UserId(slot),
                    action,
                    dataset,
                    SimTime::ZERO,
                    SimTime::ZERO + self.length,
                    self.period,
                    0,
                );
                continue;
            }
            if c <= -1.0 {
                continue; // never active
            }
            // Active once per curve period, centred on the peak at P/2.
            let half = c.acos() / (2.0 * std::f64::consts::PI); // in periods
            let mut day = 0u32;
            loop {
                let base = day as f64 * p;
                let open = base + half * p;
                let close = base + (1.0 - half) * p;
                if open >= length {
                    break;
                }
                let start = SimTime::ZERO + SimDuration::from_secs_f64(open);
                let end = SimTime::ZERO + SimDuration::from_secs_f64(close.min(length));
                let dataset =
                    DatasetId(DatasetChoice::Uniform.sample(&mut rng, self.dataset_count));
                let action = ActionId(next_action);
                next_action += 1;
                emit_action(
                    &mut proto,
                    self.seed,
                    UserId(slot),
                    action,
                    dataset,
                    start,
                    end,
                    self.period,
                    0,
                );
                day += 1;
            }
        }
        assemble(proto)
    }
}

/// A flash crowd: steady background sessions, then `crowd_users` extra
/// users pile onto `hot_dataset` across a short ramp and hold it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdSpec {
    /// Steady background slots (full-length actions, round-robin
    /// datasets).
    pub base_slots: u32,
    /// Crowd size.
    pub crowd_users: u32,
    /// The dataset everyone floods to.
    pub hot_dataset: u32,
    /// When the crowd starts arriving.
    pub onset: SimDuration,
    /// Arrival ramp: crowd user `j` joins at `onset + ramp · j / n`.
    pub ramp: SimDuration,
    /// How long each crowd user stays after joining.
    pub hold: SimDuration,
    /// Request period within an action.
    pub period: SimDuration,
    /// Run length.
    pub length: SimDuration,
    /// Datasets available to the background population.
    pub dataset_count: u32,
    /// Generator seed.
    pub seed: u64,
}

impl FlashCrowdSpec {
    /// Generate the stream. Crowd users are
    /// `UserId(CROWD_USER_OFFSET + j)`, all pinned to `hot_dataset`.
    pub fn generate(&self) -> Vec<Job> {
        assert!(self.dataset_count > 0, "need at least one dataset");
        assert!(
            self.hot_dataset < self.dataset_count,
            "hot dataset out of range"
        );
        let mut proto = Proto::new();
        let mut next_action = 0u64;
        for slot in 0..self.base_slots {
            let action = ActionId(next_action);
            next_action += 1;
            emit_action(
                &mut proto,
                self.seed,
                UserId(slot),
                action,
                DatasetId(slot % self.dataset_count),
                SimTime::ZERO,
                SimTime::ZERO + self.length,
                self.period,
                0,
            );
        }
        for j in 0..self.crowd_users {
            let join = self.onset + self.ramp.mul_f64(j as f64 / self.crowd_users.max(1) as f64);
            if join >= self.length {
                continue;
            }
            let leave = (join + self.hold).min(self.length);
            let action = ActionId(next_action);
            next_action += 1;
            emit_action(
                &mut proto,
                self.seed,
                UserId(CROWD_USER_OFFSET + j),
                action,
                DatasetId(self.hot_dataset),
                SimTime::ZERO + join,
                SimTime::ZERO + leave,
                self.period,
                0,
            );
        }
        assemble(proto)
    }
}

/// Camera-path locality: `groups` guided tours, each walked by
/// `users_per_group` adjacent users with a small stagger. User `u` of
/// group `g` visits datasets `g·path_len + k (mod dataset_count)` for
/// `k = 0..path_len`, dwelling on each; neighbours overlap on the same
/// dataset almost all the time, so `Cache[c]` sharing carries the group.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CameraPathSpec {
    /// Number of independent tours.
    pub groups: u32,
    /// Users walking each tour.
    pub users_per_group: u32,
    /// Datasets visited per tour.
    pub path_len: u32,
    /// Time spent on each dataset of the path.
    pub dwell: SimDuration,
    /// Start offset between adjacent users of a group (≪ `dwell` keeps
    /// them overlapped).
    pub stagger: SimDuration,
    /// Request period within an action.
    pub period: SimDuration,
    /// Datasets in the catalog.
    pub dataset_count: u32,
    /// Generator seed.
    pub seed: u64,
}

impl CameraPathSpec {
    /// Total run length: the last user's walk must finish.
    pub fn length(&self) -> SimDuration {
        self.stagger
            .mul_f64(self.users_per_group.saturating_sub(1) as f64)
            + self.dwell.mul_f64(self.path_len as f64)
    }

    /// Generate the stream. The camera azimuth advances continuously
    /// across a walk (frame numbering carries over dataset boundaries),
    /// modelling one smooth fly-through rather than independent looks.
    pub fn generate(&self) -> Vec<Job> {
        assert!(self.dataset_count > 0, "need at least one dataset");
        assert!(self.path_len > 0, "a tour must visit at least one dataset");
        let mut proto = Proto::new();
        let mut next_action = 0u64;
        let frames_per_dwell =
            (self.dwell.as_secs_f64() / self.period.as_secs_f64()).round() as u32;
        for g in 0..self.groups {
            for u in 0..self.users_per_group {
                let user = UserId(g * self.users_per_group + u);
                let walk_start = self.stagger.mul_f64(u as f64);
                for k in 0..self.path_len {
                    let dataset = DatasetId((g * self.path_len + k) % self.dataset_count);
                    let start = walk_start + self.dwell.mul_f64(k as f64);
                    let end = start + self.dwell;
                    let action = ActionId(next_action);
                    next_action += 1;
                    emit_action(
                        &mut proto,
                        self.seed,
                        user,
                        action,
                        dataset,
                        SimTime::ZERO + start,
                        SimTime::ZERO + end,
                        self.period,
                        k * frames_per_dwell,
                    );
                }
            }
        }
        assemble(proto)
    }
}

/// Mixed GPU tiers: a standard session workload over a cluster whose
/// nodes cycle through heterogeneous disk-speed factors.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MixedTiersSpec {
    /// The session workload to run over the tiered cluster.
    pub workload: WorkloadSpec,
    /// Per-tier disk-speed factors, assigned round-robin to nodes (e.g.
    /// `[1.0, 0.5]` alternates full-speed and half-speed I/O).
    pub tiers: Vec<f64>,
}

impl MixedTiersSpec {
    /// A sessions workload with `slots` users over `dataset_count`
    /// datasets, split across the given tiers.
    pub fn sessions(
        slots: u32,
        dataset_count: u32,
        length: SimDuration,
        tiers: Vec<f64>,
        seed: u64,
    ) -> Self {
        MixedTiersSpec {
            workload: WorkloadSpec {
                length,
                interactive: InteractiveModel {
                    slots,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        mean_action: SimDuration::from_secs(8),
                        mean_think: SimDuration::from_millis(1_200),
                    },
                },
                batch: BatchModel::none(),
                dataset_count,
                dataset_choice: DatasetChoice::Uniform,
                seed,
            },
            tiers,
        }
    }

    /// The tiered cluster: `nodes` nodes of `mem_quota` bytes each, with
    /// disk-speed factors cycling through `self.tiers`.
    pub fn cluster(&self, nodes: usize, mem_quota: u64) -> ClusterSpec {
        mixed_tier_cluster(nodes, mem_quota, &self.tiers)
    }

    /// Generate the stream (delegates to the session generator).
    pub fn generate(&self) -> Vec<Job> {
        self.workload.generate()
    }
}

/// Time-varying data: `viewers` users all follow the *current* timestep
/// of a streaming dataset. Timestep `s` is dataset id `s`; when
/// `interval` elapses and timestep `s + 1` lands, every cached chunk of
/// timestep `s` is dead weight — the shape that punishes cache-affinity
/// heuristics which assume a stable working set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimeVaryingSpec {
    /// Concurrent viewers following the stream.
    pub viewers: u32,
    /// Number of timesteps (= datasets).
    pub timesteps: u32,
    /// Wall time between timestep arrivals.
    pub interval: SimDuration,
    /// Request period within an action.
    pub period: SimDuration,
    /// Generator seed.
    pub seed: u64,
}

impl TimeVaryingSpec {
    /// Run length: all timesteps shown once.
    pub fn length(&self) -> SimDuration {
        self.interval.mul_f64(self.timesteps as f64)
    }

    /// Generate the stream: viewer `v` opens one action per timestep,
    /// always on the newest dataset.
    pub fn generate(&self) -> Vec<Job> {
        assert!(self.timesteps > 0, "need at least one timestep");
        let mut proto = Proto::new();
        let mut next_action = 0u64;
        for v in 0..self.viewers {
            for s in 0..self.timesteps {
                let start = self.interval.mul_f64(s as f64);
                let end = self.interval.mul_f64((s + 1) as f64);
                let action = ActionId(next_action);
                next_action += 1;
                emit_action(
                    &mut proto,
                    self.seed,
                    UserId(v),
                    action,
                    DatasetId(s),
                    SimTime::ZERO + start,
                    SimTime::ZERO + end,
                    self.period,
                    0,
                );
            }
        }
        assemble(proto)
    }
}

/// A cluster of `nodes` nodes with `mem_quota` bytes of cache each and
/// disk-speed factors cycling through `tiers` — the mixed-generation
/// pool every real GPU cluster becomes after its second procurement
/// round.
pub fn mixed_tier_cluster(nodes: usize, mem_quota: u64, tiers: &[f64]) -> ClusterSpec {
    assert!(!tiers.is_empty(), "need at least one tier");
    ClusterSpec {
        nodes: (0..nodes)
            .map(|i| NodeSpec {
                disk_scale: tiers[i % tiers.len()],
                ..NodeSpec::with_quota(mem_quota)
            })
            .collect(),
    }
}

/// A heterogeneously-bricked catalog: `count` datasets of `bytes` each,
/// split into chunks whose sizes vary deterministically (seeded) in
/// `[chunk_max/2, chunk_max]` — non-uniform per-chunk I/O and render
/// costs, where uniform bricking would make every task interchangeable.
pub fn heterogeneous_catalog(count: u32, bytes: u64, chunk_max: u64, seed: u64) -> Catalog {
    assert!(chunk_max >= 2, "chunk_max too small to vary");
    let mut state = seed ^ 0x51c3_7a9e_0b5d_2f84;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut datasets = Vec::new();
    let mut chunks = Vec::new();
    for d in 0..count {
        let mut sizes = Vec::new();
        let mut left = bytes;
        while left > 0 {
            let lo = chunk_max / 2;
            let span = chunk_max - lo + 1;
            let take = (lo + next() % span).min(left);
            // Never strand a sliver smaller than half a chunk.
            let take = if left - take < lo && left - take > 0 {
                left
            } else {
                take
            };
            sizes.push(take);
            left -= take;
        }
        let list = sizes
            .iter()
            .enumerate()
            .map(|(j, &b)| ChunkDesc {
                id: ChunkId {
                    dataset: DatasetId(d),
                    index: j as u32,
                },
                bytes: b,
            })
            .collect();
        datasets.push(DatasetDesc::sized(DatasetId(d), bytes));
        chunks.push(list);
    }
    Catalog::from_chunks(datasets, chunks)
}

/// One of the five traffic shapes, for sweeping them uniformly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficShape {
    /// Diurnal load curve.
    Diurnal(DiurnalSpec),
    /// Flash crowd on a hot dataset.
    FlashCrowd(FlashCrowdSpec),
    /// Camera-path locality tours.
    CameraPath(CameraPathSpec),
    /// Mixed GPU tiers under session traffic.
    MixedTiers(MixedTiersSpec),
    /// Time-varying streamed dataset.
    TimeVarying(TimeVaryingSpec),
}

impl TrafficShape {
    /// The canonical shape names, in sweep order (pinned by
    /// `results/traffic_report.json` and the docs-consistency tests).
    pub const NAMES: [&'static str; 5] = [
        "diurnal",
        "flash_crowd",
        "camera_path",
        "mixed_tiers",
        "time_varying",
    ];

    /// This shape's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficShape::Diurnal(_) => "diurnal",
            TrafficShape::FlashCrowd(_) => "flash_crowd",
            TrafficShape::CameraPath(_) => "camera_path",
            TrafficShape::MixedTiers(_) => "mixed_tiers",
            TrafficShape::TimeVarying(_) => "time_varying",
        }
    }

    /// Generate this shape's job stream.
    pub fn generate(&self) -> Vec<Job> {
        match self {
            TrafficShape::Diurnal(s) => s.generate(),
            TrafficShape::FlashCrowd(s) => s.generate(),
            TrafficShape::CameraPath(s) => s.generate(),
            TrafficShape::MixedTiers(s) => s.generate(),
            TrafficShape::TimeVarying(s) => s.generate(),
        }
    }

    /// Serialize this shape's stream onto the scenario-record format —
    /// the composition point with the record/replay plane.
    pub fn to_record(&self, header: RecordHeader) -> ScenarioRecord {
        ScenarioRecord::from_jobs(header, &self.generate())
    }

    /// One small instance of every shape (shared by the determinism
    /// tests and the `traffic_sweep` bench): a few seconds of traffic
    /// each, sized so a sweep over all five finishes in CI time.
    pub fn demo_suite(seed: u64) -> Vec<TrafficShape> {
        vec![
            TrafficShape::Diurnal(DiurnalSpec {
                slots_peak: 8,
                trough_frac: 0.25,
                curve_period: SimDuration::from_secs(8),
                period: SimDuration::from_millis(30),
                length: SimDuration::from_secs(16),
                dataset_count: 8,
                seed,
            }),
            TrafficShape::FlashCrowd(FlashCrowdSpec {
                base_slots: 4,
                crowd_users: 12,
                hot_dataset: 0,
                onset: SimDuration::from_secs(4),
                ramp: SimDuration::from_secs(2),
                hold: SimDuration::from_secs(5),
                period: SimDuration::from_millis(30),
                length: SimDuration::from_secs(16),
                dataset_count: 8,
                seed,
            }),
            TrafficShape::CameraPath(CameraPathSpec {
                groups: 2,
                users_per_group: 4,
                path_len: 4,
                dwell: SimDuration::from_secs(3),
                stagger: SimDuration::from_millis(400),
                period: SimDuration::from_millis(30),
                dataset_count: 8,
                seed,
            }),
            TrafficShape::MixedTiers(MixedTiersSpec::sessions(
                8,
                8,
                SimDuration::from_secs(16),
                vec![1.0, 0.5, 0.25],
                seed,
            )),
            TrafficShape::TimeVarying(TimeVaryingSpec {
                viewers: 6,
                timesteps: 8,
                interval: SimDuration::from_secs(2),
                period: SimDuration::from_millis(30),
                seed,
            }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_shapes_generate_sorted_dense_streams() {
        for shape in TrafficShape::demo_suite(7) {
            let jobs = shape.generate();
            assert!(!jobs.is_empty(), "{} generated nothing", shape.name());
            for (i, j) in jobs.iter().enumerate() {
                assert_eq!(j.id, JobId(i as u64), "{}", shape.name());
            }
            assert!(
                jobs.windows(2).all(|w| w[0].issue_time <= w[1].issue_time),
                "{} stream not time-sorted",
                shape.name()
            );
        }
    }

    #[test]
    fn shape_names_match_the_pinned_order() {
        let suite = TrafficShape::demo_suite(1);
        let names: Vec<&str> = suite.iter().map(|s| s.name()).collect();
        assert_eq!(names, TrafficShape::NAMES);
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let spec = DiurnalSpec {
            slots_peak: 8,
            trough_frac: 0.25,
            curve_period: SimDuration::from_secs(8),
            period: SimDuration::from_millis(30),
            length: SimDuration::from_secs(8),
            dataset_count: 4,
            seed: 3,
        };
        let jobs = spec.generate();
        // Compare request counts in the trough quarter (first 2 s) and
        // the peak quarter (3–5 s).
        let trough = jobs
            .iter()
            .filter(|j| j.issue_time.as_micros() < 2_000_000)
            .count();
        let peak = jobs
            .iter()
            .filter(|j| (3_000_000..5_000_000).contains(&j.issue_time.as_micros()))
            .count();
        assert!(
            peak > trough * 2,
            "peak {peak} should dwarf trough {trough}"
        );
    }

    #[test]
    fn flash_crowd_floods_the_hot_dataset() {
        let TrafficShape::FlashCrowd(spec) = &TrafficShape::demo_suite(5)[1] else {
            panic!("suite order changed");
        };
        let jobs = spec.generate();
        let onset_us = spec.onset.as_micros();
        let before = jobs
            .iter()
            .filter(|j| j.issue_time.as_micros() < onset_us)
            .count();
        let during = jobs
            .iter()
            .filter(|j| {
                j.issue_time.as_micros() >= onset_us && j.dataset == DatasetId(spec.hot_dataset)
            })
            .count();
        assert!(
            during > before,
            "crowd ({during}) must swamp the steady state ({before})"
        );
        // Crowd users are all pinned to the hot dataset.
        for j in &jobs {
            if j.kind.user().0 >= CROWD_USER_OFFSET {
                assert_eq!(j.dataset, DatasetId(spec.hot_dataset));
            }
        }
    }

    #[test]
    fn camera_path_neighbours_share_datasets() {
        let TrafficShape::CameraPath(spec) = &TrafficShape::demo_suite(5)[2] else {
            panic!("suite order changed");
        };
        let jobs = spec.generate();
        // At any instant, the users of one group should mostly be on the
        // same dataset: sample the middle of each dwell.
        let mid = spec.dwell.as_micros() / 2;
        for k in 0..spec.path_len {
            let t = spec.dwell.as_micros() * k as u64 + mid;
            let active: BTreeSet<u32> = jobs
                .iter()
                .filter(|j| {
                    j.kind.user().0 < spec.users_per_group
                        && j.issue_time.as_micros().abs_diff(t) < 100_000
                })
                .map(|j| j.dataset.0)
                .collect();
            assert!(
                active.len() <= 2,
                "group 0 spread over {active:?} at step {k}"
            );
        }
    }

    #[test]
    fn time_varying_switches_every_interval() {
        let TrafficShape::TimeVarying(spec) = &TrafficShape::demo_suite(5)[4] else {
            panic!("suite order changed");
        };
        let jobs = spec.generate();
        for j in &jobs {
            let step = (j.issue_time.as_micros().saturating_sub(1) / spec.interval.as_micros())
                .min(spec.timesteps as u64 - 1);
            let d = j.dataset.0 as u64;
            // A request lands inside its timestep's window (a request at
            // exactly the boundary still belongs to the step that opened
            // it).
            assert!(
                d == step || d == step + 1,
                "job at {} renders dataset {} (step {step})",
                j.issue_time.as_micros(),
                j.dataset.0
            );
        }
    }

    #[test]
    fn mixed_tier_cluster_cycles_factors() {
        let c = mixed_tier_cluster(5, 1 << 20, &[1.0, 0.5]);
        let scales: Vec<f64> = c.nodes.iter().map(|n| n.disk_scale).collect();
        assert_eq!(scales, vec![1.0, 0.5, 1.0, 0.5, 1.0]);
    }

    #[test]
    fn heterogeneous_catalog_varies_chunk_sizes() {
        let catalog = heterogeneous_catalog(3, 8 << 20, 1 << 20, 11);
        let sizes: BTreeSet<u64> = catalog
            .chunks_of(DatasetId(0))
            .iter()
            .map(|c| c.bytes)
            .collect();
        assert!(sizes.len() > 1, "chunks should not be uniform: {sizes:?}");
        let total: u64 = catalog
            .chunks_of(DatasetId(0))
            .iter()
            .map(|c| c.bytes)
            .sum();
        assert_eq!(total, 8 << 20);
        // Deterministic for a fixed seed.
        let again = heterogeneous_catalog(3, 8 << 20, 1 << 20, 11);
        for d in 0..3 {
            assert_eq!(
                catalog.chunks_of(DatasetId(d)),
                again.chunks_of(DatasetId(d))
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_shape() {
        for (a, b) in TrafficShape::demo_suite(42)
            .into_iter()
            .zip(TrafficShape::demo_suite(42))
        {
            assert_eq!(a.generate(), b.generate(), "{}", a.name());
        }
    }
}
