//! The versioned JSONL scenario record: capture any live or simulated run
//! as a replayable request stream.
//!
//! A [`ScenarioRecord`] is one header line followed by timestamped
//! `session` / `request` / `fault` lines, one JSON object per line (the
//! full schema lives in `docs/SCENARIO_FORMAT.md`). The header pins
//! everything placement depends on — seed, scheduling policy, cycle
//! period, cost-model constants, cluster shape, and the exact chunk
//! decomposition — plus a fingerprint over those fields, so a record is a
//! self-contained experiment: feed it to `Scenario::from_record` and the
//! simulator re-places every task identically.
//!
//! Records are written by the [`RecordingProbe`], which observes jobs at
//! the head node's single admission entry point (`Probe::on_job_offered`,
//! fired exactly once per offered job by both the live service and the
//! simulator) and faults from the `fault_injected` trace event. Parsing is
//! total: [`ScenarioRecord::parse`] never panics and reports errors with
//! the 1-based line number, so a truncated or hand-mangled record fails
//! loud and early.

use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Mutex;
use vizsched_core::cluster::{ClusterSpec, NodeSpec};
use vizsched_core::cost::CostParams;
use vizsched_core::data::{Catalog, ChunkDesc, DatasetDesc};
use vizsched_core::ids::{ActionId, BatchId, ChunkId, DatasetId, JobId, UserId};
use vizsched_core::job::{FrameParams, Job, JobKind};
use vizsched_core::time::{SimDuration, SimTime};
use vizsched_metrics::{InjectedFault, Probe, TraceEvent};

/// The record-format version this crate writes (and the only one it
/// reads; see `docs/SCENARIO_FORMAT.md` for the compatibility rules).
pub const RECORD_VERSION: u32 = 1;

/// The `"t"` tags of every line kind a record may contain, in canonical
/// order. `docs/SCENARIO_FORMAT.md` documents one table row and one
/// worked line per kind; `tests/docs_consistency.rs` enforces that.
pub const RECORD_KINDS: [&str; 4] = ["header", "session", "request", "fault"];

/// Everything placement depends on, pinned at record time.
#[derive(Clone, Debug, PartialEq)]
pub struct RecordHeader {
    /// Format version ([`RECORD_VERSION`]).
    pub version: u32,
    /// Display label of the recorded run.
    pub label: String,
    /// Workload seed of the recorded run (zero for live traffic, which
    /// has no generator seed).
    pub seed: u64,
    /// Scheduling-policy name (`SchedulerKind` display form, e.g.
    /// "OURS").
    pub policy: String,
    /// The head node's cycle period ω.
    pub cycle: SimDuration,
    /// Cost-model constants of the recorded cluster.
    pub cost: CostParams,
    /// The recorded cluster (per-node quotas, GPU memory, disk-speed
    /// factors — heterogeneous tiers survive the round trip).
    pub cluster: ClusterSpec,
    /// The dataset descriptors, dense by id.
    pub datasets: Vec<DatasetDesc>,
    /// Per-dataset chunk sizes in bytes, parallel to `datasets` — the
    /// exact decomposition, so heterogeneous bricking replays as-is.
    pub chunks: Vec<Vec<u64>>,
}

impl RecordHeader {
    /// Pin a header from a run's configuration and its decomposition
    /// catalog.
    pub fn new(
        label: &str,
        seed: u64,
        policy: &str,
        cycle: SimDuration,
        cost: CostParams,
        cluster: ClusterSpec,
        catalog: &Catalog,
    ) -> Self {
        let datasets = catalog.datasets().to_vec();
        let chunks = datasets
            .iter()
            .map(|d| catalog.chunks_of(d.id).iter().map(|c| c.bytes).collect())
            .collect();
        RecordHeader {
            version: RECORD_VERSION,
            label: label.to_string(),
            seed,
            policy: policy.to_string(),
            cycle,
            cost,
            cluster,
            datasets,
            chunks,
        }
    }

    /// FNV-1a 64 over every placement-relevant header field. Written into
    /// the header line and re-checked on parse, so silent corruption of
    /// the configuration (as opposed to the request stream, which is
    /// checked structurally) cannot masquerade as a faithful replay.
    pub fn fingerprint(&self) -> u64 {
        let mut canon = String::new();
        let _ = write!(
            canon,
            "v{}|{}|{}|{}|{}",
            self.version,
            self.seed,
            self.policy,
            self.cycle.as_micros(),
            cost_canon(&self.cost),
        );
        for n in &self.cluster.nodes {
            let _ = write!(canon, "|n{},{},{}", n.mem_quota, n.gpu_mem, n.disk_scale);
        }
        for (d, chunks) in self.datasets.iter().zip(&self.chunks) {
            let _ = write!(canon, "|d{},{}", d.id.0, d.bytes);
            for b in chunks {
                let _ = write!(canon, ",{b}");
            }
        }
        fnv1a(canon.as_bytes())
    }

    /// Rebuild the exact decomposition catalog the run used.
    pub fn catalog(&self) -> Catalog {
        let chunks = self
            .chunks
            .iter()
            .enumerate()
            .map(|(d, sizes)| {
                sizes
                    .iter()
                    .enumerate()
                    .map(|(j, &bytes)| ChunkDesc {
                        id: ChunkId {
                            dataset: DatasetId(d as u32),
                            index: j as u32,
                        },
                        bytes,
                    })
                    .collect()
            })
            .collect();
        Catalog::from_chunks(self.datasets.clone(), chunks)
    }
}

fn cost_canon(c: &CostParams) -> String {
    format!(
        "c{},{},{},{},{},{}",
        c.disk_bw,
        c.render_fixed.as_micros(),
        c.render_per_gib.as_micros(),
        c.composite_fixed.as_micros(),
        c.composite_per_node.as_micros(),
        c.upload_bw,
    )
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A `session` line: the first sighting of an interactive action or a
/// batch submission, derived by the recorder (one per distinct
/// user/action or user/request pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionLine {
    /// When the session's first job was offered.
    pub at: SimTime,
    /// The user behind it.
    pub user: UserId,
    /// Interactive action or batch submission.
    pub kind: SessionKind,
    /// The dataset the session opened on.
    pub dataset: DatasetId,
}

/// What a [`SessionLine`] describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionKind {
    /// A continuous camera action.
    Interactive {
        /// The action id.
        action: ActionId,
    },
    /// A batch submission.
    Batch {
        /// The submission id.
        request: BatchId,
    },
}

/// A `fault` line: one `fault_injected` trace event, re-playable through
/// a `FaultPlan` built from the same `(kind, target, param)` triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultLine {
    /// When the fault took effect.
    pub at: SimTime,
    /// The fault taxonomy kind.
    pub kind: InjectedFault,
    /// Global node id, leaf-group base, or shard id, per `kind`.
    pub target: u32,
    /// Leaf-group size, degrade per-mille, or zero, per `kind`.
    pub param: u32,
}

/// A parsed or captured scenario record: header plus the three line
/// streams, each in record order.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioRecord {
    /// The pinned run configuration.
    pub header: RecordHeader,
    /// Derived session-open lines.
    pub sessions: Vec<SessionLine>,
    /// The offered jobs, exactly as the head saw them (ids, issue times,
    /// camera parameters).
    pub requests: Vec<Job>,
    /// Injected faults, in injection order.
    pub faults: Vec<FaultLine>,
}

/// A parse failure, pointing at the offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordError {
    /// 1-based line number in the JSONL text.
    pub line: usize,
    /// What went wrong there.
    pub msg: String,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for RecordError {}

impl ScenarioRecord {
    /// Build a record for a synthetic job stream (the workload
    /// generators' path onto the wire format): sessions are derived from
    /// the jobs, and there are no faults.
    pub fn from_jobs(header: RecordHeader, jobs: &[Job]) -> Self {
        let mut sessions = Vec::new();
        let mut seen = BTreeSet::new();
        for job in jobs {
            note_session(&mut sessions, &mut seen, job);
        }
        ScenarioRecord {
            header,
            sessions,
            requests: jobs.to_vec(),
            faults: Vec::new(),
        }
    }

    /// The captured request stream.
    pub fn jobs(&self) -> &[Job] {
        &self.requests
    }

    /// The exact decomposition catalog of the recorded run.
    pub fn catalog(&self) -> Catalog {
        self.header.catalog()
    }

    /// Serialize to canonical JSONL: the header line, then all
    /// session/request/fault lines merged in time order (ties break
    /// session &lt; request &lt; fault, each stream keeping its own
    /// order). Serialization is deterministic: the same record always
    /// yields the same bytes.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(256 + self.requests.len() * 160);
        write_header(&mut out, &self.header);
        let (mut s, mut r, mut f) = (0, 0, 0);
        loop {
            let ts = self.sessions.get(s).map(|l| l.at.as_micros());
            let tr = self.requests.get(r).map(|j| j.issue_time.as_micros());
            let tf = self.faults.get(f).map(|l| l.at.as_micros());
            let next = [ts, tr, tf].into_iter().flatten().min();
            let Some(t) = next else { break };
            if ts == Some(t) {
                write_session(&mut out, &self.sessions[s]);
                s += 1;
            } else if tr == Some(t) {
                write_request(&mut out, &self.requests[r]);
                r += 1;
            } else {
                write_fault(&mut out, &self.faults[f]);
                f += 1;
            }
        }
        out
    }

    /// Parse a JSONL record. Total: every failure — bad JSON, an unknown
    /// line kind, a missing field, a version or fingerprint mismatch,
    /// time going backwards, a duplicate job id — comes back as a
    /// [`RecordError`] carrying the 1-based line number. Unknown *keys*
    /// inside a known line kind are ignored (the forward-compatibility
    /// rule of `docs/SCENARIO_FORMAT.md`).
    pub fn parse(text: &str) -> Result<ScenarioRecord, RecordError> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (first_no, first) = lines
            .next()
            .ok_or_else(|| err(1, "empty record: expected a header line"))?;
        let val = json::parse(first).map_err(|m| err(first_no + 1, &m))?;
        let header = parse_header(&val).map_err(|m| err(first_no + 1, &m))?;

        let mut record = ScenarioRecord {
            header,
            sessions: Vec::new(),
            requests: Vec::new(),
            faults: Vec::new(),
        };
        let mut last_us = 0u64;
        let mut last_job: Option<u64> = None;
        for (idx, line) in lines {
            let no = idx + 1;
            let val = json::parse(line).map_err(|m| err(no, &m))?;
            let tag = val.str_field("t").map_err(|m| err(no, &m))?;
            let at = val.u64_field("at_us").map_err(|m| err(no, &m))?;
            if at < last_us {
                return Err(err(
                    no,
                    &format!("time goes backwards: at_us {at} after {last_us}"),
                ));
            }
            last_us = at;
            match tag.as_str() {
                "session" => {
                    let l = parse_session(&val, at).map_err(|m| err(no, &m))?;
                    record.sessions.push(l);
                }
                "request" => {
                    let job = parse_request(&val, at).map_err(|m| err(no, &m))?;
                    if let Some(prev) = last_job {
                        if job.id.0 <= prev {
                            return Err(err(
                                no,
                                &format!("job ids must increase: {} after {prev}", job.id.0),
                            ));
                        }
                    }
                    last_job = Some(job.id.0);
                    record.requests.push(job);
                }
                "fault" => {
                    let l = parse_fault(&val, at).map_err(|m| err(no, &m))?;
                    record.faults.push(l);
                }
                "header" => {
                    return Err(err(no, "duplicate header line"));
                }
                other => {
                    return Err(err(no, &format!("unknown line kind {other:?}")));
                }
            }
        }
        Ok(record)
    }
}

fn err(line: usize, msg: &str) -> RecordError {
    RecordError {
        line,
        msg: msg.to_string(),
    }
}

fn note_session(sessions: &mut Vec<SessionLine>, seen: &mut BTreeSet<(bool, u32, u64)>, job: &Job) {
    let (key, kind) = match job.kind {
        JobKind::Interactive { user, action } => (
            (true, user.0, action.0),
            SessionKind::Interactive { action },
        ),
        JobKind::Batch { user, request, .. } => {
            ((false, user.0, request.0), SessionKind::Batch { request })
        }
    };
    if seen.insert(key) {
        sessions.push(SessionLine {
            at: job.issue_time,
            user: job.kind.user(),
            kind,
            dataset: job.dataset,
        });
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_header(out: &mut String, h: &RecordHeader) {
    let _ = write!(
        out,
        "{{\"t\":\"header\",\"v\":{},\"label\":\"{}\",\"seed\":{},\"policy\":\"{}\",\"cycle_us\":{},\"fingerprint\":\"{:016x}\"",
        h.version,
        escape(&h.label),
        h.seed,
        escape(&h.policy),
        h.cycle.as_micros(),
        h.fingerprint(),
    );
    let c = &h.cost;
    let _ = write!(
        out,
        ",\"cost\":{{\"disk_bw\":{},\"render_fixed_us\":{},\"render_per_gib_us\":{},\"composite_fixed_us\":{},\"composite_per_node_us\":{},\"upload_bw\":{}}}",
        c.disk_bw,
        c.render_fixed.as_micros(),
        c.render_per_gib.as_micros(),
        c.composite_fixed.as_micros(),
        c.composite_per_node.as_micros(),
        c.upload_bw,
    );
    out.push_str(",\"cluster\":[");
    for (i, n) in h.cluster.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"mem_quota\":{},\"gpu_mem\":{},\"disk_scale\":{}}}",
            n.mem_quota, n.gpu_mem, n.disk_scale
        );
    }
    out.push_str("],\"datasets\":[");
    for (i, (d, chunks)) in h.datasets.iter().zip(&h.chunks).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":\"{}\",\"bytes\":{}",
            d.id.0,
            escape(&d.name),
            d.bytes
        );
        if let Some([x, y, z]) = d.dims {
            let _ = write!(out, ",\"dims\":[{x},{y},{z}]");
        }
        out.push_str(",\"chunks\":[");
        for (j, b) in chunks.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out.push('\n');
}

fn write_session(out: &mut String, l: &SessionLine) {
    match l.kind {
        SessionKind::Interactive { action } => {
            let _ = write!(
                out,
                "{{\"t\":\"session\",\"at_us\":{},\"kind\":\"interactive\",\"user\":{},\"action\":{},\"dataset\":{}}}",
                l.at.as_micros(),
                l.user.0,
                action.0,
                l.dataset.0
            );
        }
        SessionKind::Batch { request } => {
            let _ = write!(
                out,
                "{{\"t\":\"session\",\"at_us\":{},\"kind\":\"batch\",\"user\":{},\"request\":{},\"dataset\":{}}}",
                l.at.as_micros(),
                l.user.0,
                request.0,
                l.dataset.0
            );
        }
    }
    out.push('\n');
}

fn write_request(out: &mut String, job: &Job) {
    let _ = write!(
        out,
        "{{\"t\":\"request\",\"at_us\":{},\"job\":{}",
        job.issue_time.as_micros(),
        job.id.0
    );
    match job.kind {
        JobKind::Interactive { user, action } => {
            let _ = write!(
                out,
                ",\"kind\":\"interactive\",\"user\":{},\"action\":{}",
                user.0, action.0
            );
        }
        JobKind::Batch {
            user,
            request,
            frame,
        } => {
            let _ = write!(
                out,
                ",\"kind\":\"batch\",\"user\":{},\"request\":{},\"frame\":{frame}",
                user.0, request.0
            );
        }
    }
    let f = &job.frame;
    let _ = write!(
        out,
        ",\"dataset\":{},\"azimuth\":{},\"elevation\":{},\"distance\":{},\"transfer_fn\":{}}}",
        job.dataset.0, f.azimuth, f.elevation, f.distance, f.transfer_fn
    );
    out.push('\n');
}

fn write_fault(out: &mut String, l: &FaultLine) {
    let _ = write!(
        out,
        "{{\"t\":\"fault\",\"at_us\":{},\"kind\":\"{}\",\"target\":{},\"param\":{}}}",
        l.at.as_micros(),
        l.kind.as_str(),
        l.target,
        l.param
    );
    out.push('\n');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_header(val: &json::Val) -> Result<RecordHeader, String> {
    let tag = val.str_field("t")?;
    if tag != "header" {
        return Err(format!("expected a header line first, got {tag:?}"));
    }
    let version = val.u64_field("v")? as u32;
    if version != RECORD_VERSION {
        return Err(format!(
            "unsupported record version {version} (this build reads v{RECORD_VERSION})"
        ));
    }
    let cost_val = val.field("cost")?;
    let cost = CostParams {
        disk_bw: cost_val.u64_field("disk_bw")?,
        render_fixed: SimDuration::from_micros(cost_val.u64_field("render_fixed_us")?),
        render_per_gib: SimDuration::from_micros(cost_val.u64_field("render_per_gib_us")?),
        composite_fixed: SimDuration::from_micros(cost_val.u64_field("composite_fixed_us")?),
        composite_per_node: SimDuration::from_micros(cost_val.u64_field("composite_per_node_us")?),
        upload_bw: cost_val.u64_field("upload_bw")?,
    };
    let mut nodes = Vec::new();
    for n in val.field("cluster")?.elements()? {
        nodes.push(NodeSpec {
            mem_quota: n.u64_field("mem_quota")?,
            gpu_mem: n.u64_field("gpu_mem")?,
            disk_scale: n.f64_field("disk_scale")?,
        });
    }
    if nodes.is_empty() {
        return Err("header cluster has no nodes".to_string());
    }
    let mut datasets = Vec::new();
    let mut chunks = Vec::new();
    for (i, d) in val.field("datasets")?.elements()?.iter().enumerate() {
        let id = d.u64_field("id")? as u32;
        if id as usize != i {
            return Err(format!(
                "dataset ids must be dense: got {id} at position {i}"
            ));
        }
        let sizes: Result<Vec<u64>, String> = d
            .field("chunks")?
            .elements()?
            .iter()
            .map(|c| c.num::<u64>())
            .collect();
        let sizes = sizes?;
        if sizes.is_empty() {
            return Err(format!("dataset {id} has no chunks"));
        }
        let dims = match d.field("dims") {
            Ok(v) => {
                let els = v.elements()?;
                if els.len() != 3 {
                    return Err(format!("dataset {id} dims must have 3 entries"));
                }
                Some([
                    els[0].num::<u32>()?,
                    els[1].num::<u32>()?,
                    els[2].num::<u32>()?,
                ])
            }
            Err(_) => None,
        };
        datasets.push(DatasetDesc {
            id: DatasetId(id),
            name: d.str_field("name")?,
            bytes: d.u64_field("bytes")?,
            dims,
        });
        chunks.push(sizes);
    }
    if datasets.is_empty() {
        return Err("header has no datasets".to_string());
    }
    let header = RecordHeader {
        version,
        label: val.str_field("label")?,
        seed: val.u64_field("seed")?,
        policy: val.str_field("policy")?,
        cycle: SimDuration::from_micros(val.u64_field("cycle_us")?),
        cost,
        cluster: ClusterSpec { nodes },
        datasets,
        chunks,
    };
    let claimed = val.str_field("fingerprint")?;
    let actual = format!("{:016x}", header.fingerprint());
    if claimed != actual {
        return Err(format!(
            "fingerprint mismatch: header claims {claimed}, fields hash to {actual}"
        ));
    }
    Ok(header)
}

fn parse_session(val: &json::Val, at_us: u64) -> Result<SessionLine, String> {
    let at = SimTime::from_micros(at_us);
    let user = UserId(val.u64_field("user")? as u32);
    let dataset = DatasetId(val.u64_field("dataset")? as u32);
    let kind = match val.str_field("kind")?.as_str() {
        "interactive" => SessionKind::Interactive {
            action: ActionId(val.u64_field("action")?),
        },
        "batch" => SessionKind::Batch {
            request: BatchId(val.u64_field("request")?),
        },
        other => return Err(format!("unknown session kind {other:?}")),
    };
    Ok(SessionLine {
        at,
        user,
        kind,
        dataset,
    })
}

fn parse_request(val: &json::Val, at_us: u64) -> Result<Job, String> {
    let user = UserId(val.u64_field("user")? as u32);
    let kind = match val.str_field("kind")?.as_str() {
        "interactive" => JobKind::Interactive {
            user,
            action: ActionId(val.u64_field("action")?),
        },
        "batch" => JobKind::Batch {
            user,
            request: BatchId(val.u64_field("request")?),
            frame: val.u64_field("frame")? as u32,
        },
        other => return Err(format!("unknown request kind {other:?}")),
    };
    Ok(Job {
        id: JobId(val.u64_field("job")?),
        kind,
        dataset: DatasetId(val.u64_field("dataset")? as u32),
        issue_time: SimTime::from_micros(at_us),
        frame: FrameParams {
            azimuth: val.f32_field("azimuth")?,
            elevation: val.f32_field("elevation")?,
            distance: val.f32_field("distance")?,
            transfer_fn: val.u64_field("transfer_fn")? as u32,
        },
    })
}

fn parse_fault(val: &json::Val, at_us: u64) -> Result<FaultLine, String> {
    let name = val.str_field("kind")?;
    let kind = [
        InjectedFault::NodeCrash,
        InjectedFault::NodeRespawn,
        InjectedFault::NodeDegrade,
        InjectedFault::NodeRestore,
        InjectedFault::LeafOutage,
        InjectedFault::LeafRecover,
        InjectedFault::ShardCrash,
    ]
    .into_iter()
    .find(|k| k.as_str() == name)
    .ok_or_else(|| format!("unknown fault kind {name:?}"))?;
    Ok(FaultLine {
        at: SimTime::from_micros(at_us),
        kind,
        target: val.u64_field("target")? as u32,
        param: val.u64_field("param")? as u32,
    })
}

// ---------------------------------------------------------------------
// The recording probe
// ---------------------------------------------------------------------

/// A [`Probe`] that captures a run as a [`ScenarioRecord`] while also
/// buffering the full trace-event stream (so one probe serves both the
/// recorder and any parity comparison).
///
/// Attach it like any other probe — `RunOptions::probe` on the simulator,
/// `ServiceConfig::probe` on the live service — and call
/// [`RecordingProbe::finish`] when the run is done.
#[derive(Debug)]
pub struct RecordingProbe {
    header: RecordHeader,
    state: Mutex<RecState>,
}

#[derive(Debug, Default)]
struct RecState {
    sessions: Vec<SessionLine>,
    seen: BTreeSet<(bool, u32, u64)>,
    requests: Vec<Job>,
    faults: Vec<FaultLine>,
    events: Vec<TraceEvent>,
}

impl RecordingProbe {
    /// A recorder whose header pins the given run configuration.
    pub fn new(header: RecordHeader) -> Self {
        RecordingProbe {
            header,
            state: Mutex::new(RecState::default()),
        }
    }

    /// Snapshot the capture as a [`ScenarioRecord`].
    pub fn finish(&self) -> ScenarioRecord {
        let st = self.state.lock().expect("recorder lock");
        ScenarioRecord {
            header: self.header.clone(),
            sessions: st.sessions.clone(),
            requests: st.requests.clone(),
            faults: st.faults.clone(),
        }
    }

    /// Copy out every trace event seen so far (the recorder doubles as a
    /// `CollectingProbe`).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.state.lock().expect("recorder lock").events.clone()
    }

    /// Number of requests captured so far.
    pub fn request_count(&self) -> usize {
        self.state.lock().expect("recorder lock").requests.len()
    }

    /// Serialize the capture and write it to `path`.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.finish().to_jsonl())
    }
}

impl Probe for RecordingProbe {
    fn on_event(&self, event: &TraceEvent) {
        let mut st = self.state.lock().expect("recorder lock");
        if let TraceEvent::FaultInjected {
            now,
            kind,
            target,
            param,
        } = event
        {
            st.faults.push(FaultLine {
                at: *now,
                kind: *kind,
                target: *target,
                param: *param,
            });
        }
        st.events.push(*event);
    }

    fn on_job_offered(&self, _now: SimTime, job: &Job) {
        let mut st = self.state.lock().expect("recorder lock");
        let RecState {
            sessions,
            seen,
            requests,
            ..
        } = &mut *st;
        note_session(sessions, seen, job);
        requests.push(job.clone());
    }
}

// ---------------------------------------------------------------------
// A minimal single-line JSON reader. `vizsched-bench` has a fuller JSON
// module, but bench depends on this crate, so the record parser carries
// its own. Numbers keep their raw text until the caller names a type —
// u64 seeds stay exact, f32 camera angles re-parse to the identical bits.
// ---------------------------------------------------------------------

mod json {
    /// One parsed JSON value; numbers stay as raw text.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Val {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// A number, kept as its raw token.
        Num(String),
        /// A string (escapes decoded).
        Str(String),
        /// An array.
        Arr(Vec<Val>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Val)>),
    }

    impl Val {
        /// Look up a required object field.
        pub fn field(&self, key: &str) -> Result<&Val, String> {
            match self {
                Val::Obj(fields) => fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| format!("missing field {key:?}")),
                _ => Err(format!("expected an object with field {key:?}")),
            }
        }

        /// The elements of an array value.
        pub fn elements(&self) -> Result<&[Val], String> {
            match self {
                Val::Arr(items) => Ok(items),
                _ => Err("expected an array".to_string()),
            }
        }

        /// Parse this value's raw number token as `T`.
        pub fn num<T: std::str::FromStr>(&self) -> Result<T, String> {
            match self {
                Val::Num(raw) => raw.parse::<T>().map_err(|_| format!("bad number {raw:?}")),
                _ => Err("expected a number".to_string()),
            }
        }

        /// A required string field.
        pub fn str_field(&self, key: &str) -> Result<String, String> {
            match self.field(key)? {
                Val::Str(s) => Ok(s.clone()),
                _ => Err(format!("field {key:?} must be a string")),
            }
        }

        /// A required unsigned-integer field.
        pub fn u64_field(&self, key: &str) -> Result<u64, String> {
            self.field(key)?
                .num::<u64>()
                .map_err(|_| format!("field {key:?} must be an unsigned integer"))
        }

        /// A required f64 field.
        pub fn f64_field(&self, key: &str) -> Result<f64, String> {
            self.field(key)?
                .num::<f64>()
                .map_err(|_| format!("field {key:?} must be a number"))
        }

        /// A required f32 field (parsed straight from the raw token, so
        /// the writer's shortest-round-trip formatting is exact).
        pub fn f32_field(&self, key: &str) -> Result<f32, String> {
            self.field(key)?
                .num::<f32>()
                .map_err(|_| format!("field {key:?} must be a number"))
        }
    }

    /// Parse one line of JSON.
    pub fn parse(line: &str) -> Result<Val, String> {
        let bytes = line.as_bytes();
        let mut pos = 0;
        let val = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at column {}", pos + 1));
        }
        Ok(val)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Val::Str(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Val::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Val::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Val::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
            Some(c) => Err(format!(
                "unexpected byte {:?} at column {}",
                *c as char,
                *pos + 1
            )),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, val: Val) -> Result<Val, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(val)
        } else {
            Err(format!("bad literal at column {}", *pos + 1))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        }
        let raw = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8".to_string())?;
        if raw.is_empty() || raw == "-" {
            return Err(format!("bad number at column {}", start + 1));
        }
        Ok(Val::Num(raw.to_string()))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        *pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            *pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| "bad utf8 in string".to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    *pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        *pos += 1; // '{'
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected a key at column {}", *pos + 1));
            }
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at column {}", *pos + 1));
            }
            *pos += 1;
            let val = value(b, pos)?;
            fields.push((key, val));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at column {}", *pos + 1)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Val, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at column {}", *pos + 1)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vizsched_core::data::{uniform_datasets, DecompositionPolicy};

    fn small_header() -> RecordHeader {
        let catalog = Catalog::new(
            uniform_datasets(2, 4 << 20),
            DecompositionPolicy::MaxChunkSize { max_bytes: 1 << 20 },
        );
        RecordHeader::new(
            "unit",
            7,
            "OURS",
            SimDuration::from_millis(30),
            CostParams::default(),
            ClusterSpec::homogeneous(2, 64 << 20),
            &catalog,
        )
    }

    fn small_jobs() -> Vec<Job> {
        vec![
            Job {
                id: JobId(0),
                kind: JobKind::Interactive {
                    user: UserId(0),
                    action: ActionId(5),
                },
                dataset: DatasetId(1),
                issue_time: SimTime::from_millis(1),
                frame: FrameParams {
                    azimuth: 0.02,
                    ..FrameParams::default()
                },
            },
            Job {
                id: JobId(1),
                kind: JobKind::Batch {
                    user: UserId(1000),
                    request: BatchId(0),
                    frame: 3,
                },
                dataset: DatasetId(0),
                issue_time: SimTime::from_millis(2),
                frame: FrameParams::default(),
            },
        ]
    }

    #[test]
    fn round_trips_byte_identically() {
        let record = ScenarioRecord::from_jobs(small_header(), &small_jobs());
        let text = record.to_jsonl();
        let back = ScenarioRecord::parse(&text).expect("parse");
        assert_eq!(back, record);
        assert_eq!(back.to_jsonl(), text, "serialization must be canonical");
    }

    #[test]
    fn header_catalog_round_trips() {
        let h = small_header();
        let catalog = h.catalog();
        assert_eq!(catalog.datasets().len(), 2);
        assert_eq!(catalog.task_count(DatasetId(0)), 4);
        assert_eq!(
            RecordHeader::new(
                "unit",
                7,
                "OURS",
                SimDuration::from_millis(30),
                CostParams::default(),
                ClusterSpec::homogeneous(2, 64 << 20),
                &catalog,
            ),
            h
        );
    }

    #[test]
    fn truncated_record_reports_line_number() {
        let record = ScenarioRecord::from_jobs(small_header(), &small_jobs());
        let text = record.to_jsonl();
        // Cut the final line mid-object.
        let cut = &text[..text.len() - 10];
        let e = ScenarioRecord::parse(cut).expect_err("must fail");
        // Header, two sessions, two requests: the cut lands on line 5.
        assert_eq!(e.line, 5, "{e}");
    }

    #[test]
    fn empty_record_fails_gracefully() {
        let e = ScenarioRecord::parse("").expect_err("must fail");
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("header"), "{e}");
    }

    #[test]
    fn fingerprint_mismatch_detected() {
        let record = ScenarioRecord::from_jobs(small_header(), &small_jobs());
        let text = record.to_jsonl().replace("\"seed\":7", "\"seed\":8");
        let e = ScenarioRecord::parse(&text).expect_err("must fail");
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("fingerprint"), "{e}");
    }

    #[test]
    fn out_of_order_times_rejected() {
        let record = ScenarioRecord::from_jobs(small_header(), &small_jobs());
        let text = record.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        // Move the last (latest) line right after the header.
        let swapped = [lines[0], lines[4], lines[1], lines[2], lines[3]].join("\n");
        let e = ScenarioRecord::parse(&swapped).expect_err("must fail");
        assert!(e.to_string().contains("backwards"), "{e}");
    }

    #[test]
    fn unknown_line_kind_rejected() {
        let record = ScenarioRecord::from_jobs(small_header(), &[]);
        let mut text = record.to_jsonl();
        text.push_str("{\"t\":\"mystery\",\"at_us\":5}\n");
        let e = ScenarioRecord::parse(&text).expect_err("must fail");
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("mystery"), "{e}");
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let record = ScenarioRecord::from_jobs(small_header(), &small_jobs());
        let text = record
            .to_jsonl()
            .replace("\"t\":\"request\"", "\"t\":\"request\",\"note\":\"extra\"");
        let back = ScenarioRecord::parse(&text).expect("forward-compatible parse");
        assert_eq!(back.requests, record.requests);
    }

    #[test]
    fn recording_probe_derives_sessions_once() {
        let probe = RecordingProbe::new(small_header());
        for job in small_jobs() {
            probe.on_job_offered(job.issue_time, &job);
        }
        // A second frame of the same action adds a request, not a session.
        let mut again = small_jobs().remove(0);
        again.id = JobId(2);
        again.issue_time = SimTime::from_millis(3);
        probe.on_job_offered(again.issue_time, &again);
        let record = probe.finish();
        assert_eq!(record.sessions.len(), 2);
        assert_eq!(record.requests.len(), 3);
    }
}
