//! Overload bursts: overlay a window of extra interactive demand on a base
//! workload, for admission-control and stale-frame-coalescing experiments.
//!
//! The paper sizes its scenarios so the cluster keeps up (§VI); the
//! overload experiments deliberately break that premise. A [`BurstSpec`]
//! adds `extra_slots` full-length interactive users, active only inside
//! `[window_start, window_start + window)`, each requesting at its own
//! `period` — typically *faster* than the scheduling cycle `ω`, so several
//! frames of one action pile up per cycle and stale-frame coalescing has
//! something to shed. Burst users and actions live in disjoint id ranges
//! (`UserId` +10000, `ActionId` +1000000) so they never collide with the
//! base workload's principals.

use crate::arrival::uniform_duration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vizsched_core::ids::{ActionId, DatasetId, JobId, UserId};
use vizsched_core::job::{FrameParams, Job, JobKind};
use vizsched_core::time::{SimDuration, SimTime};

/// User-id offset separating burst users from base principals (base
/// interactive users are small slot indices; base batch users start at
/// 1000).
pub const BURST_USER_OFFSET: u32 = 10_000;

/// Action-id offset separating burst actions from base actions.
pub const BURST_ACTION_OFFSET: u64 = 1_000_000;

/// A window of extra interactive demand overlaid on a base workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    /// Number of additional full-length interactive users during the
    /// window. Zero is a valid no-op overlay.
    pub extra_slots: u32,
    /// When the burst begins, relative to the run start.
    pub window_start: SimDuration,
    /// How long the burst lasts.
    pub window: SimDuration,
    /// Request period of each burst user. Faster than the scheduling
    /// cycle `ω` means same-action frames queue up within one cycle —
    /// the stale-frame-coalescing regime.
    pub period: SimDuration,
    /// RNG seed for per-action phase and request jitter.
    pub seed: u64,
}

impl BurstSpec {
    /// Overlay the burst on `base` (sorted by issue time, as
    /// `WorkloadSpec::generate` produces): burst users are added in
    /// `0..extra_slots`, slot `i` exploring dataset `i mod dataset_count`,
    /// and the merged list is re-sorted with dense arrival-order job ids.
    pub fn overlay(&self, base: &[Job], dataset_count: u32) -> Vec<Job> {
        assert!(dataset_count > 0, "need at least one dataset");
        let mut proto: Vec<Job> = base.to_vec();
        let end = SimTime::ZERO + self.window_start + self.window;
        let max_jitter = self.period / 10;
        for slot in 0..self.extra_slots {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0xb0b5 + slot as u64),
            );
            let user = UserId(BURST_USER_OFFSET + slot);
            let action = ActionId(BURST_ACTION_OFFSET + slot as u64);
            let dataset = DatasetId(slot % dataset_count);
            // Same arrival texture as the base generator: a per-action
            // phase plus bounded per-request jitter, so burst users are
            // not cycle-synchronized.
            let phase = uniform_duration(&mut rng, SimDuration::ZERO, self.period);
            let mut nominal = SimTime::ZERO + self.window_start + phase;
            let mut frame = 0u32;
            while nominal < end {
                let t =
                    (nominal + uniform_duration(&mut rng, SimDuration::ZERO, max_jitter)).min(end);
                proto.push(Job {
                    id: JobId(0), // reassigned below
                    kind: JobKind::Interactive { user, action },
                    dataset,
                    issue_time: t,
                    frame: FrameParams {
                        azimuth: frame as f32 * 0.02,
                        ..FrameParams::default()
                    },
                });
                nominal += self.period;
                frame += 1;
            }
        }
        proto.sort_by_key(|j| j.issue_time);
        for (i, job) in proto.iter_mut().enumerate() {
            job.id = JobId(i as u64);
        }
        proto
    }

    /// Expected number of burst jobs (exact up to one frame per slot of
    /// phase loss).
    pub fn expected_jobs(&self) -> f64 {
        self.extra_slots as f64 * self.window.as_secs_f64() / self.period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ActionBehavior, BatchModel, DatasetChoice, InteractiveModel};
    use crate::WorkloadSpec;

    fn base_jobs() -> Vec<Job> {
        WorkloadSpec {
            length: SimDuration::from_secs(4),
            interactive: InteractiveModel {
                slots: 2,
                period: SimDuration::from_millis(30),
                behavior: ActionBehavior::FullLength,
            },
            batch: BatchModel {
                submissions: 1,
                frames_min: 4,
                frames_max: 4,
                window_frac: 0.5,
            },
            dataset_count: 2,
            dataset_choice: DatasetChoice::Uniform,
            seed: 5,
        }
        .generate()
    }

    fn burst() -> BurstSpec {
        BurstSpec {
            extra_slots: 6,
            window_start: SimDuration::from_secs(1),
            window: SimDuration::from_secs(2),
            period: SimDuration::from_millis(10),
            seed: 9,
        }
    }

    #[test]
    fn overlay_is_sorted_with_dense_ids_and_expected_count() {
        let base = base_jobs();
        let merged = burst().overlay(&base, 2);
        for (i, j) in merged.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
            if i > 0 {
                assert!(j.issue_time >= merged[i - 1].issue_time);
            }
        }
        let added = merged.len() - base.len();
        let expected = burst().expected_jobs();
        assert!(
            (added as f64 - expected).abs() <= 6.0,
            "added {added}, expected about {expected}"
        );
    }

    #[test]
    fn burst_principals_are_disjoint_from_base() {
        let base = base_jobs();
        let merged = burst().overlay(&base, 2);
        let burst_jobs: Vec<&Job> = merged
            .iter()
            .filter(|j| j.kind.user().0 >= BURST_USER_OFFSET)
            .collect();
        assert!(!burst_jobs.is_empty());
        for j in &burst_jobs {
            let action = j.kind.action().expect("burst jobs are interactive");
            assert!(action.0 >= BURST_ACTION_OFFSET);
            let t = j.issue_time - SimTime::ZERO;
            assert!(t >= SimDuration::from_secs(1) && t <= SimDuration::from_secs(3));
        }
        // Base principals never reach the burst ranges.
        for j in &base {
            assert!(j.kind.user().0 < BURST_USER_OFFSET);
            if let Some(action) = j.kind.action() {
                assert!(action.0 < BURST_ACTION_OFFSET);
            }
        }
    }

    #[test]
    fn zero_extra_slots_is_the_identity_overlay() {
        let base = base_jobs();
        let merged = BurstSpec {
            extra_slots: 0,
            ..burst()
        }
        .overlay(&base, 2);
        assert_eq!(merged, base);
    }

    #[test]
    fn overlay_is_deterministic() {
        let base = base_jobs();
        assert_eq!(burst().overlay(&base, 2), burst().overlay(&base, 2));
        let other = BurstSpec {
            seed: 10,
            ..burst()
        };
        assert_ne!(other.overlay(&base, 2), burst().overlay(&base, 2));
    }
}
