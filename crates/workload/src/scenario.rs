//! The four experiment scenarios of Table II, plus scaled-down variants
//! for tests and parameter sweeps (Figs. 8–9).
//!
//! | # | nodes | memory | datasets | total size | length | batch | interactive | target |
//! |---|-------|--------|----------|-----------|--------|-------|-------------|--------|
//! | 1 | 8     | 16 GB  | 6 × 2 GB | 12 GB     | 60 s   | 0     | ~12006      | 33.33 fps |
//! | 2 | 8     | 16 GB  | 12 × 2 GB| 24 GB     | 120 s  | ~2251 | ~21011      | 33.33 fps |
//! | 3 | 64    | 512 GB | 32 × 8 GB| 256 GB    | 300 s  | ~9844 | ~160633     | 33.33 fps |
//! | 4 | 64    | 512 GB | 128 × 8 GB| 1 TB     | 600 s  | ~35176| ~388481     | 33.33 fps |
//!
//! Scenarios 1–2 run on the 8-node GTX 285 cluster cost profile; 3–4 on the
//! ANL GPU cluster profile. Job counts from the session generator land
//! within a few percent of the paper's (which are themselves one sampled
//! realization); `EXPERIMENTS.md` records the counts actually generated.

use crate::generator::{ActionBehavior, BatchModel, DatasetChoice, InteractiveModel, WorkloadSpec};
use crate::record::ScenarioRecord;
use serde::{Deserialize, Serialize};
use vizsched_core::cluster::ClusterSpec;
use vizsched_core::cost::CostParams;
use vizsched_core::data::{uniform_datasets, Catalog, DatasetDesc, DecompositionPolicy};
use vizsched_core::job::Job;
use vizsched_core::time::SimDuration;

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

/// Everything needed to run one experiment: cluster, costs, data, workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display label ("scenario-1", …).
    pub label: String,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Cost-model constants for that cluster.
    pub cost: CostParams,
    /// `Chk_max` (512 MB in all paper scenarios).
    pub chunk_max: u64,
    /// Number of datasets.
    pub dataset_count: u32,
    /// Size of each dataset in bytes.
    pub dataset_bytes: u64,
    /// The workload description.
    pub workload: WorkloadSpec,
    /// The interactive frame-rate target (33.33 fps).
    pub target_fps: f64,
    /// When set, this scenario replays a captured [`ScenarioRecord`]
    /// instead of generating jobs: [`Scenario::jobs`] returns the
    /// recorded stream verbatim and [`Scenario::catalog`] rebuilds the
    /// recorded decomposition (which may be heterogeneous).
    pub replay: Option<ReplayPlan>,
}

/// The captured side of a replay scenario (see [`Scenario::from_record`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplayPlan {
    /// The recorded request stream, ids and issue times included.
    pub jobs: Vec<Job>,
    /// The recorded dataset descriptors, dense by id.
    pub datasets: Vec<DatasetDesc>,
    /// Per-dataset chunk sizes in bytes (the exact recorded bricking).
    pub chunks: Vec<Vec<u64>>,
}

impl Scenario {
    /// Build scenario `n` (1–4) from Table II.
    pub fn table2(n: u8) -> Scenario {
        Scenario::table2_seeded(n, 2012)
    }

    /// Build scenario `n` with an explicit workload seed.
    pub fn table2_seeded(n: u8, seed: u64) -> Scenario {
        match n {
            1 => Scenario::build(
                "scenario-1",
                8,
                2 * GIB,
                CostParams::eight_node_cluster(),
                6,
                2 * GIB,
                SimDuration::from_secs(60),
                InteractiveModel {
                    slots: 6,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::FullLength,
                },
                BatchModel::none(),
                seed,
            ),
            2 => Scenario::build(
                "scenario-2",
                8,
                2 * GIB,
                CostParams::eight_node_cluster(),
                12,
                2 * GIB,
                SimDuration::from_secs(120),
                InteractiveModel {
                    slots: 6,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        mean_action: SimDuration::from_secs(12),
                        mean_think: SimDuration::from_millis(1_800),
                    },
                },
                BatchModel {
                    submissions: 25,
                    frames_min: 60,
                    frames_max: 120,
                    window_frac: 0.85,
                },
                seed,
            ),
            3 => Scenario::build(
                "scenario-3",
                64,
                8 * GIB,
                CostParams::anl_gpu_cluster(),
                32,
                8 * GIB,
                SimDuration::from_secs(300),
                InteractiveModel {
                    slots: 18,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        mean_action: SimDuration::from_secs(5),
                        mean_think: SimDuration::from_millis(600),
                    },
                },
                BatchModel {
                    submissions: 110,
                    frames_min: 60,
                    frames_max: 120,
                    window_frac: 0.85,
                },
                seed,
            ),
            4 => Scenario::build(
                "scenario-4",
                64,
                8 * GIB,
                CostParams::anl_gpu_cluster(),
                128,
                8 * GIB,
                SimDuration::from_secs(600),
                InteractiveModel {
                    slots: 20,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        mean_action: SimDuration::from_secs(10),
                        mean_think: SimDuration::from_millis(300),
                    },
                },
                BatchModel {
                    submissions: 390,
                    frames_min: 60,
                    frames_max: 120,
                    window_frac: 0.9,
                },
                seed,
            ),
            other => panic!("Table II defines scenarios 1-4, not {other}"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        label: &str,
        nodes: usize,
        quota: u64,
        cost: CostParams,
        dataset_count: u32,
        dataset_bytes: u64,
        length: SimDuration,
        interactive: InteractiveModel,
        batch: BatchModel,
        seed: u64,
    ) -> Scenario {
        Scenario {
            label: label.to_string(),
            cluster: ClusterSpec::homogeneous(nodes, quota),
            cost,
            chunk_max: 512 * MIB,
            dataset_count,
            dataset_bytes,
            workload: WorkloadSpec {
                length,
                interactive,
                batch,
                dataset_count,
                dataset_choice: DatasetChoice::Uniform,
                seed,
            },
            target_fps: 1.0e6 / 30_000.0,
            replay: None,
        }
    }

    /// A replay scenario wrapping a captured [`ScenarioRecord`]: the
    /// cluster, cost constants, and decomposition come from the record's
    /// header, and [`Scenario::jobs`] returns the recorded request
    /// stream verbatim — same ids, issue times, and camera parameters —
    /// so the simulator re-places every task exactly as the recorded run
    /// did.
    pub fn from_record(record: &ScenarioRecord) -> Scenario {
        let h = &record.header;
        let length = record
            .requests
            .last()
            .map(|j| SimDuration::from_micros(j.issue_time.as_micros()))
            .unwrap_or_else(|| SimDuration::from_micros(0));
        let chunk_max = h
            .chunks
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(512 * MIB);
        Scenario {
            label: format!("{}-replay", h.label),
            cluster: h.cluster.clone(),
            cost: h.cost,
            chunk_max,
            dataset_count: h.datasets.len() as u32,
            dataset_bytes: h.datasets.first().map(|d| d.bytes).unwrap_or(0),
            workload: WorkloadSpec {
                length,
                interactive: InteractiveModel {
                    slots: 0,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::FullLength,
                },
                batch: BatchModel::none(),
                dataset_count: h.datasets.len() as u32,
                dataset_choice: DatasetChoice::Uniform,
                seed: h.seed,
            },
            target_fps: 1.0e6 / 30_000.0,
            replay: Some(ReplayPlan {
                jobs: record.requests.clone(),
                datasets: h.datasets.clone(),
                chunks: h.chunks.clone(),
            }),
        }
    }

    /// The dataset catalog input (the recorded descriptors when
    /// replaying).
    pub fn datasets(&self) -> Vec<DatasetDesc> {
        match &self.replay {
            Some(r) => r.datasets.clone(),
            None => uniform_datasets(self.dataset_count, self.dataset_bytes),
        }
    }

    /// The decomposition catalog this scenario runs over. Generated
    /// scenarios decompose uniformly under `Chk_max`; replay scenarios
    /// rebuild the recorded (possibly heterogeneous) bricking, so pass
    /// this to the run's catalog override when replaying.
    pub fn catalog(&self) -> Catalog {
        use vizsched_core::data::ChunkDesc;
        use vizsched_core::ids::{ChunkId, DatasetId};
        match &self.replay {
            Some(r) => {
                let chunks = r
                    .chunks
                    .iter()
                    .enumerate()
                    .map(|(d, sizes)| {
                        sizes
                            .iter()
                            .enumerate()
                            .map(|(j, &bytes)| ChunkDesc {
                                id: ChunkId {
                                    dataset: DatasetId(d as u32),
                                    index: j as u32,
                                },
                                bytes,
                            })
                            .collect()
                    })
                    .collect();
                Catalog::from_chunks(r.datasets.clone(), chunks)
            }
            None => Catalog::new(
                self.datasets(),
                DecompositionPolicy::MaxChunkSize {
                    max_bytes: self.chunk_max,
                },
            ),
        }
    }

    /// Generate the job list (or return the recorded stream when
    /// replaying).
    pub fn jobs(&self) -> Vec<Job> {
        match &self.replay {
            Some(r) => r.jobs.clone(),
            None => self.workload.generate(),
        }
    }

    /// A proportionally shortened copy (for quick tests): the arrival
    /// process is cut to `length`, keeping all rates the same.
    pub fn shortened(mut self, length: SimDuration) -> Scenario {
        // Scale batch submissions with the length so the mix is preserved.
        let frac = length.as_secs_f64() / self.workload.length.as_secs_f64();
        self.workload.length = length;
        self.workload.batch.submissions = ((self.workload.batch.submissions as f64 * frac).round()
            as u32)
            .max(if self.workload.batch.submissions > 0 {
                1
            } else {
                0
            });
        // Scale the session timescales too, or a shortened run degenerates
        // into one think-free action per slot: the full-length scenarios
        // alternate action and think phases many times, and those
        // interactive lulls are what lets a deferring scheduler trickle
        // batch loads out mid-run. Equal scaling preserves the duty cycle
        // (and thus job rates) regardless of exponent; √frac splits the
        // difference between keeping the alternation *count* (exponent 1,
        // which compresses dataset switches — and their cold reloads — into
        // 1/frac times the I/O churn, overloading the cluster) and keeping
        // the switch *rate* (exponent 0, which leaves too few lulls to
        // observe deferred-batch behavior at all).
        if let ActionBehavior::Sessions {
            mean_action,
            mean_think,
        } = &mut self.workload.interactive.behavior
        {
            let floor = self.workload.interactive.period;
            let scale = frac.sqrt();
            *mean_action = mean_action.mul_f64(scale).max(floor);
            *mean_think = mean_think.mul_f64(scale).max(floor);
        }
        self.label = format!("{}-short", self.label);
        self
    }

    /// A custom sweep scenario used by Figs. 8 and 9: `nodes` nodes with
    /// `quota` memory, `datasets` datasets of `dataset_bytes`, `slots`
    /// concurrent actions over `length`, and an optional batch stream.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep(
        label: &str,
        nodes: usize,
        quota: u64,
        datasets: u32,
        dataset_bytes: u64,
        slots: u32,
        length: SimDuration,
        batch_submissions: u32,
        seed: u64,
    ) -> Scenario {
        Scenario {
            label: label.to_string(),
            cluster: ClusterSpec::homogeneous(nodes, quota),
            cost: CostParams::anl_gpu_cluster(),
            chunk_max: 512 * MIB,
            dataset_count: datasets,
            dataset_bytes,
            workload: WorkloadSpec {
                length,
                interactive: InteractiveModel {
                    slots,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        // Long exploration sessions: sweeps vary load via
                        // the slot count, not via churn.
                        mean_action: SimDuration::from_secs(20),
                        mean_think: SimDuration::from_millis(2_400),
                    },
                },
                batch: if batch_submissions == 0 {
                    BatchModel::none()
                } else {
                    BatchModel {
                        submissions: batch_submissions,
                        frames_min: 60,
                        frames_max: 120,
                        window_frac: 0.85,
                    }
                },
                dataset_count: datasets,
                dataset_choice: DatasetChoice::Uniform,
                seed,
            },
            target_fps: 1.0e6 / 30_000.0,
            replay: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_matches_table2() {
        let s = Scenario::table2(1);
        assert_eq!(s.cluster.len(), 8);
        assert_eq!(s.cluster.total_memory(), 16 * GIB);
        assert_eq!(s.dataset_count, 6);
        assert_eq!(s.dataset_count as u64 * s.dataset_bytes, 12 * GIB);
        let jobs = s.jobs();
        // Paper: 12006 interactive jobs, 0 batch; ours generates ~12000.
        assert!((11_994..=12_000).contains(&jobs.len()), "{}", jobs.len());
        assert!(jobs.iter().all(|j| j.kind.is_interactive()));
    }

    #[test]
    fn scenario2_counts_near_table2() {
        let s = Scenario::table2(2);
        let jobs = s.jobs();
        let interactive = jobs.iter().filter(|j| j.kind.is_interactive()).count() as f64;
        let batch = jobs.iter().filter(|j| !j.kind.is_interactive()).count() as f64;
        assert!(
            (interactive - 21_011.0).abs() / 21_011.0 < 0.10,
            "interactive = {interactive}"
        );
        assert!((batch - 2_251.0).abs() / 2_251.0 < 0.15, "batch = {batch}");
    }

    #[test]
    fn scenario3_and_4_memory_and_data_sizes() {
        let s3 = Scenario::table2(3);
        assert_eq!(s3.cluster.len(), 64);
        assert_eq!(s3.cluster.total_memory(), 512 * GIB);
        assert_eq!(s3.dataset_count as u64 * s3.dataset_bytes, 256 * GIB);
        let s4 = Scenario::table2(4);
        assert_eq!(s4.dataset_count as u64 * s4.dataset_bytes, 1024 * GIB);
    }

    #[test]
    #[should_panic(expected = "scenarios 1-4")]
    fn scenario_numbers_validated() {
        Scenario::table2(5);
    }

    #[test]
    fn shortened_preserves_rates() {
        let s = Scenario::table2(2).shortened(SimDuration::from_secs(12));
        let jobs = s.jobs();
        let interactive = jobs.iter().filter(|j| j.kind.is_interactive()).count() as f64;
        // One tenth the length -> about one tenth the jobs.
        assert!(
            (interactive - 2_101.0).abs() / 2_101.0 < 0.25,
            "interactive = {interactive}"
        );
        let limit = vizsched_core::time::SimTime::from_secs(12);
        assert!(jobs.iter().all(|j| j.issue_time <= limit));
    }

    #[test]
    fn seeds_change_workload_not_shape() {
        let a = Scenario::table2_seeded(2, 1).jobs();
        let b = Scenario::table2_seeded(2, 2).jobs();
        assert_ne!(a, b);
        let ratio = a.len() as f64 / b.len() as f64;
        assert!((ratio - 1.0).abs() < 0.2);
    }
}
