//! The four experiment scenarios of Table II, plus scaled-down variants
//! for tests and parameter sweeps (Figs. 8–9).
//!
//! | # | nodes | memory | datasets | total size | length | batch | interactive | target |
//! |---|-------|--------|----------|-----------|--------|-------|-------------|--------|
//! | 1 | 8     | 16 GB  | 6 × 2 GB | 12 GB     | 60 s   | 0     | ~12006      | 33.33 fps |
//! | 2 | 8     | 16 GB  | 12 × 2 GB| 24 GB     | 120 s  | ~2251 | ~21011      | 33.33 fps |
//! | 3 | 64    | 512 GB | 32 × 8 GB| 256 GB    | 300 s  | ~9844 | ~160633     | 33.33 fps |
//! | 4 | 64    | 512 GB | 128 × 8 GB| 1 TB     | 600 s  | ~35176| ~388481     | 33.33 fps |
//!
//! Scenarios 1–2 run on the 8-node GTX 285 cluster cost profile; 3–4 on the
//! ANL GPU cluster profile. Job counts from the session generator land
//! within a few percent of the paper's (which are themselves one sampled
//! realization); `EXPERIMENTS.md` records the counts actually generated.

use crate::generator::{ActionBehavior, BatchModel, DatasetChoice, InteractiveModel, WorkloadSpec};
use serde::{Deserialize, Serialize};
use vizsched_core::cluster::ClusterSpec;
use vizsched_core::cost::CostParams;
use vizsched_core::data::{uniform_datasets, DatasetDesc};
use vizsched_core::job::Job;
use vizsched_core::time::SimDuration;

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

/// Everything needed to run one experiment: cluster, costs, data, workload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display label ("scenario-1", …).
    pub label: String,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Cost-model constants for that cluster.
    pub cost: CostParams,
    /// `Chk_max` (512 MB in all paper scenarios).
    pub chunk_max: u64,
    /// Number of datasets.
    pub dataset_count: u32,
    /// Size of each dataset in bytes.
    pub dataset_bytes: u64,
    /// The workload description.
    pub workload: WorkloadSpec,
    /// The interactive frame-rate target (33.33 fps).
    pub target_fps: f64,
}

impl Scenario {
    /// Build scenario `n` (1–4) from Table II.
    pub fn table2(n: u8) -> Scenario {
        Scenario::table2_seeded(n, 2012)
    }

    /// Build scenario `n` with an explicit workload seed.
    pub fn table2_seeded(n: u8, seed: u64) -> Scenario {
        match n {
            1 => Scenario::build(
                "scenario-1",
                8,
                2 * GIB,
                CostParams::eight_node_cluster(),
                6,
                2 * GIB,
                SimDuration::from_secs(60),
                InteractiveModel {
                    slots: 6,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::FullLength,
                },
                BatchModel::none(),
                seed,
            ),
            2 => Scenario::build(
                "scenario-2",
                8,
                2 * GIB,
                CostParams::eight_node_cluster(),
                12,
                2 * GIB,
                SimDuration::from_secs(120),
                InteractiveModel {
                    slots: 6,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        mean_action: SimDuration::from_secs(12),
                        mean_think: SimDuration::from_millis(1_800),
                    },
                },
                BatchModel {
                    submissions: 25,
                    frames_min: 60,
                    frames_max: 120,
                    window_frac: 0.85,
                },
                seed,
            ),
            3 => Scenario::build(
                "scenario-3",
                64,
                8 * GIB,
                CostParams::anl_gpu_cluster(),
                32,
                8 * GIB,
                SimDuration::from_secs(300),
                InteractiveModel {
                    slots: 18,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        mean_action: SimDuration::from_secs(5),
                        mean_think: SimDuration::from_millis(600),
                    },
                },
                BatchModel {
                    submissions: 110,
                    frames_min: 60,
                    frames_max: 120,
                    window_frac: 0.85,
                },
                seed,
            ),
            4 => Scenario::build(
                "scenario-4",
                64,
                8 * GIB,
                CostParams::anl_gpu_cluster(),
                128,
                8 * GIB,
                SimDuration::from_secs(600),
                InteractiveModel {
                    slots: 20,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        mean_action: SimDuration::from_secs(10),
                        mean_think: SimDuration::from_millis(300),
                    },
                },
                BatchModel {
                    submissions: 390,
                    frames_min: 60,
                    frames_max: 120,
                    window_frac: 0.9,
                },
                seed,
            ),
            other => panic!("Table II defines scenarios 1-4, not {other}"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        label: &str,
        nodes: usize,
        quota: u64,
        cost: CostParams,
        dataset_count: u32,
        dataset_bytes: u64,
        length: SimDuration,
        interactive: InteractiveModel,
        batch: BatchModel,
        seed: u64,
    ) -> Scenario {
        Scenario {
            label: label.to_string(),
            cluster: ClusterSpec::homogeneous(nodes, quota),
            cost,
            chunk_max: 512 * MIB,
            dataset_count,
            dataset_bytes,
            workload: WorkloadSpec {
                length,
                interactive,
                batch,
                dataset_count,
                dataset_choice: DatasetChoice::Uniform,
                seed,
            },
            target_fps: 1.0e6 / 30_000.0,
        }
    }

    /// The dataset catalog input.
    pub fn datasets(&self) -> Vec<DatasetDesc> {
        uniform_datasets(self.dataset_count, self.dataset_bytes)
    }

    /// Generate the job list.
    pub fn jobs(&self) -> Vec<Job> {
        self.workload.generate()
    }

    /// A proportionally shortened copy (for quick tests): the arrival
    /// process is cut to `length`, keeping all rates the same.
    pub fn shortened(mut self, length: SimDuration) -> Scenario {
        // Scale batch submissions with the length so the mix is preserved.
        let frac = length.as_secs_f64() / self.workload.length.as_secs_f64();
        self.workload.length = length;
        self.workload.batch.submissions = ((self.workload.batch.submissions as f64 * frac).round()
            as u32)
            .max(if self.workload.batch.submissions > 0 {
                1
            } else {
                0
            });
        // Scale the session timescales too, or a shortened run degenerates
        // into one think-free action per slot: the full-length scenarios
        // alternate action and think phases many times, and those
        // interactive lulls are what lets a deferring scheduler trickle
        // batch loads out mid-run. Equal scaling preserves the duty cycle
        // (and thus job rates) regardless of exponent; √frac splits the
        // difference between keeping the alternation *count* (exponent 1,
        // which compresses dataset switches — and their cold reloads — into
        // 1/frac times the I/O churn, overloading the cluster) and keeping
        // the switch *rate* (exponent 0, which leaves too few lulls to
        // observe deferred-batch behavior at all).
        if let ActionBehavior::Sessions {
            mean_action,
            mean_think,
        } = &mut self.workload.interactive.behavior
        {
            let floor = self.workload.interactive.period;
            let scale = frac.sqrt();
            *mean_action = mean_action.mul_f64(scale).max(floor);
            *mean_think = mean_think.mul_f64(scale).max(floor);
        }
        self.label = format!("{}-short", self.label);
        self
    }

    /// A custom sweep scenario used by Figs. 8 and 9: `nodes` nodes with
    /// `quota` memory, `datasets` datasets of `dataset_bytes`, `slots`
    /// concurrent actions over `length`, and an optional batch stream.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep(
        label: &str,
        nodes: usize,
        quota: u64,
        datasets: u32,
        dataset_bytes: u64,
        slots: u32,
        length: SimDuration,
        batch_submissions: u32,
        seed: u64,
    ) -> Scenario {
        Scenario {
            label: label.to_string(),
            cluster: ClusterSpec::homogeneous(nodes, quota),
            cost: CostParams::anl_gpu_cluster(),
            chunk_max: 512 * MIB,
            dataset_count: datasets,
            dataset_bytes,
            workload: WorkloadSpec {
                length,
                interactive: InteractiveModel {
                    slots,
                    period: SimDuration::from_millis(30),
                    behavior: ActionBehavior::Sessions {
                        // Long exploration sessions: sweeps vary load via
                        // the slot count, not via churn.
                        mean_action: SimDuration::from_secs(20),
                        mean_think: SimDuration::from_millis(2_400),
                    },
                },
                batch: if batch_submissions == 0 {
                    BatchModel::none()
                } else {
                    BatchModel {
                        submissions: batch_submissions,
                        frames_min: 60,
                        frames_max: 120,
                        window_frac: 0.85,
                    }
                },
                dataset_count: datasets,
                dataset_choice: DatasetChoice::Uniform,
                seed,
            },
            target_fps: 1.0e6 / 30_000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario1_matches_table2() {
        let s = Scenario::table2(1);
        assert_eq!(s.cluster.len(), 8);
        assert_eq!(s.cluster.total_memory(), 16 * GIB);
        assert_eq!(s.dataset_count, 6);
        assert_eq!(s.dataset_count as u64 * s.dataset_bytes, 12 * GIB);
        let jobs = s.jobs();
        // Paper: 12006 interactive jobs, 0 batch; ours generates ~12000.
        assert!((11_994..=12_000).contains(&jobs.len()), "{}", jobs.len());
        assert!(jobs.iter().all(|j| j.kind.is_interactive()));
    }

    #[test]
    fn scenario2_counts_near_table2() {
        let s = Scenario::table2(2);
        let jobs = s.jobs();
        let interactive = jobs.iter().filter(|j| j.kind.is_interactive()).count() as f64;
        let batch = jobs.iter().filter(|j| !j.kind.is_interactive()).count() as f64;
        assert!(
            (interactive - 21_011.0).abs() / 21_011.0 < 0.10,
            "interactive = {interactive}"
        );
        assert!((batch - 2_251.0).abs() / 2_251.0 < 0.15, "batch = {batch}");
    }

    #[test]
    fn scenario3_and_4_memory_and_data_sizes() {
        let s3 = Scenario::table2(3);
        assert_eq!(s3.cluster.len(), 64);
        assert_eq!(s3.cluster.total_memory(), 512 * GIB);
        assert_eq!(s3.dataset_count as u64 * s3.dataset_bytes, 256 * GIB);
        let s4 = Scenario::table2(4);
        assert_eq!(s4.dataset_count as u64 * s4.dataset_bytes, 1024 * GIB);
    }

    #[test]
    #[should_panic(expected = "scenarios 1-4")]
    fn scenario_numbers_validated() {
        Scenario::table2(5);
    }

    #[test]
    fn shortened_preserves_rates() {
        let s = Scenario::table2(2).shortened(SimDuration::from_secs(12));
        let jobs = s.jobs();
        let interactive = jobs.iter().filter(|j| j.kind.is_interactive()).count() as f64;
        // One tenth the length -> about one tenth the jobs.
        assert!(
            (interactive - 2_101.0).abs() / 2_101.0 < 0.25,
            "interactive = {interactive}"
        );
        let limit = vizsched_core::time::SimTime::from_secs(12);
        assert!(jobs.iter().all(|j| j.issue_time <= limit));
    }

    #[test]
    fn seeds_change_workload_not_shape() {
        let a = Scenario::table2_seeded(2, 1).jobs();
        let b = Scenario::table2_seeded(2, 2).jobs();
        assert_ne!(a, b);
        let ratio = a.len() as f64 / b.len() as f64;
        assert!((ratio - 1.0).abs() < 0.2);
    }
}
