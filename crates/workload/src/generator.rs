//! Multi-user workload generation: interactive action streams and batch
//! submissions, merged into one issue-ordered job list.
//!
//! The paper's experiments drive the service with "simultaneous user
//! actions that periodically request rendering" at a target of 33.33 fps
//! (one request every 30 ms per action, Table II) plus batch rendering
//! submissions (animation frames over a dataset). The generator models:
//!
//! * a fixed number of user *slots*; each slot is one user who either holds
//!   one continuous action for the whole run (Scenario 1) or alternates
//!   exponentially-distributed actions and think pauses (Scenarios 2–4);
//! * batch submissions at uniform random times, each expanding into a run
//!   of frame jobs queued at submission time.

use crate::arrival::{exp_duration, uniform_duration, uniform_u32};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vizsched_core::ids::{ActionId, BatchId, DatasetId, JobId, UserId};
use vizsched_core::job::{FrameParams, Job, JobKind};
use vizsched_core::time::{SimDuration, SimTime};

/// How sessions pick datasets.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DatasetChoice {
    /// Every dataset equally likely (the Table II scenarios).
    Uniform,
    /// Zipf-distributed popularity with exponent `s`: dataset 0 is the
    /// hottest. Real archives are skewed — a few datasets get most of the
    /// exploration — which *helps* locality-aware scheduling; the sweep
    /// binaries use this to probe sensitivity.
    Zipf {
        /// The skew exponent (1.0 ≈ classic Zipf; 0.0 degenerates to
        /// uniform).
        s: f64,
    },
}

impl DatasetChoice {
    /// Sample a dataset index in `0..count`.
    pub fn sample<R: rand::Rng + rand::RngExt>(&self, rng: &mut R, count: u32) -> u32 {
        assert!(count > 0, "need at least one dataset");
        match *self {
            DatasetChoice::Uniform => uniform_u32(rng, 0, count - 1),
            DatasetChoice::Zipf { s } => {
                assert!(
                    s >= 0.0 && s.is_finite(),
                    "zipf exponent must be finite and >= 0"
                );
                // Inverse-CDF over the normalized harmonic weights.
                let total: f64 = (1..=count as u64).map(|k| 1.0 / (k as f64).powf(s)).sum();
                let mut target: f64 = rng.random_range(0.0..1.0) * total;
                for k in 0..count {
                    target -= 1.0 / ((k + 1) as f64).powf(s);
                    if target <= 0.0 {
                        return k;
                    }
                }
                count - 1
            }
        }
    }
}

/// How a user slot behaves over the run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ActionBehavior {
    /// One action spanning the whole run; slot `i` explores dataset
    /// `i mod datasets` (Scenario 1's "six users, six datasets").
    FullLength,
    /// Alternate action bursts and think pauses, both exponentially
    /// distributed; each action picks a dataset uniformly at random.
    Sessions {
        /// Mean action duration.
        mean_action: SimDuration,
        /// Mean pause between actions.
        mean_think: SimDuration,
    },
}

/// The interactive side of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InteractiveModel {
    /// Number of concurrently active user slots.
    pub slots: u32,
    /// Request period within an action (30 ms for the 33.33 fps target).
    pub period: SimDuration,
    /// Session structure.
    pub behavior: ActionBehavior,
}

/// The batch side of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BatchModel {
    /// Number of batch submissions over the run.
    pub submissions: u32,
    /// Minimum frames per submission.
    pub frames_min: u32,
    /// Maximum frames per submission.
    pub frames_max: u32,
    /// Submissions arrive uniformly in `[0, window_frac · length]`.
    pub window_frac: f64,
}

impl BatchModel {
    /// No batch work at all.
    pub fn none() -> Self {
        BatchModel {
            submissions: 0,
            frames_min: 0,
            frames_max: 0,
            window_frac: 0.0,
        }
    }
}

/// A complete workload description.
///
/// ```
/// use vizsched_core::time::SimDuration;
/// use vizsched_workload::{
///     ActionBehavior, BatchModel, DatasetChoice, InteractiveModel, WorkloadSpec,
/// };
///
/// let spec = WorkloadSpec {
///     length: SimDuration::from_secs(3),
///     interactive: InteractiveModel {
///         slots: 2,
///         period: SimDuration::from_millis(30),
///         behavior: ActionBehavior::FullLength,
///     },
///     batch: BatchModel::none(),
///     dataset_count: 2,
///     dataset_choice: DatasetChoice::Uniform,
///     seed: 1,
/// };
/// let jobs = spec.generate();
/// assert!(jobs.len() >= 190 && jobs.len() <= 200); // ~2 x 100 frames
/// assert!(jobs.windows(2).all(|w| w[0].issue_time <= w[1].issue_time));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Total simulated length of the arrival process.
    pub length: SimDuration,
    /// Interactive model.
    pub interactive: InteractiveModel,
    /// Batch model.
    pub batch: BatchModel,
    /// Number of datasets actions and submissions draw from.
    pub dataset_count: u32,
    /// How actions and submissions pick datasets.
    pub dataset_choice: DatasetChoice,
    /// Master RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Generate the job list, sorted by issue time with dense arrival-order
    /// ids. Interactive users are `UserId(slot)`; each batch submission
    /// gets its own user id offset by 1000 (fair-sharing treats
    /// submissions as distinct principals).
    pub fn generate(&self) -> Vec<Job> {
        assert!(self.dataset_count > 0, "need at least one dataset");
        let mut proto: Vec<(SimTime, JobKind, DatasetId, FrameParams)> = Vec::new();
        let mut next_action = 0u64;

        for slot in 0..self.interactive.slots {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x5eed + slot as u64));
            match self.interactive.behavior {
                ActionBehavior::FullLength => {
                    let dataset = DatasetId(slot % self.dataset_count);
                    let action = ActionId(next_action);
                    next_action += 1;
                    self.emit_action(
                        &mut proto,
                        slot,
                        action,
                        dataset,
                        SimTime::ZERO,
                        self.length,
                    );
                }
                ActionBehavior::Sessions {
                    mean_action,
                    mean_think,
                } => {
                    let mut t = SimDuration::ZERO;
                    // Stagger slot starts uniformly over one think period so
                    // slots do not fire in lockstep.
                    t += uniform_duration(&mut rng, SimDuration::ZERO, self.interactive.period);
                    while t < self.length {
                        let burst = exp_duration(&mut rng, mean_action)
                            .max(self.interactive.period)
                            .min(self.length - t);
                        let dataset =
                            DatasetId(self.dataset_choice.sample(&mut rng, self.dataset_count));
                        let action = ActionId(next_action);
                        next_action += 1;
                        self.emit_action(
                            &mut proto,
                            slot,
                            action,
                            dataset,
                            SimTime::ZERO + t,
                            burst,
                        );
                        t += burst + exp_duration(&mut rng, mean_think);
                    }
                }
            }
        }

        // Batch submissions.
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0xba7c4));
        let window = self.length.mul_f64(self.batch.window_frac.clamp(0.0, 1.0));
        for sub in 0..self.batch.submissions {
            let at = SimTime::ZERO + uniform_duration(&mut rng, SimDuration::ZERO, window);
            let dataset = DatasetId(self.dataset_choice.sample(&mut rng, self.dataset_count));
            let frames = uniform_u32(&mut rng, self.batch.frames_min, self.batch.frames_max);
            let user = UserId(1000 + sub);
            for frame in 0..frames {
                let params = FrameParams {
                    azimuth: frame as f32 * 0.05,
                    ..FrameParams::default()
                };
                proto.push((
                    at,
                    JobKind::Batch {
                        user,
                        request: BatchId(sub as u64),
                        frame,
                    },
                    dataset,
                    params,
                ));
            }
        }

        // Sort by issue time (stable on insertion order for ties) and
        // assign dense arrival-order ids.
        proto.sort_by_key(|(t, ..)| *t);
        proto
            .into_iter()
            .enumerate()
            .map(|(i, (issue_time, kind, dataset, frame))| Job {
                id: JobId(i as u64),
                kind,
                dataset,
                issue_time,
                frame,
            })
            .collect()
    }

    /// Emit the request stream of one action. Requests are nominally one
    /// `period` apart, but carry a per-action phase and ±10 % per-request
    /// jitter: real users are not microsecond-synchronized, and perfectly
    /// aligned periodic arrivals let deterministic greedy schedulers fall
    /// into placement rotations that no physical system sustains.
    fn emit_action(
        &self,
        proto: &mut Vec<(SimTime, JobKind, DatasetId, FrameParams)>,
        slot: u32,
        action: ActionId,
        dataset: DatasetId,
        start: SimTime,
        duration: SimDuration,
    ) {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(action.0),
        );
        let user = UserId(slot);
        let end = start + duration;
        let phase = uniform_duration(&mut rng, SimDuration::ZERO, self.interactive.period);
        let mut nominal = start + phase;
        let mut frame = 0u32;
        let max_jitter = self.interactive.period / 10;
        while nominal < end {
            // Jitter never pushes a request past the action's end (the
            // generator promises `issue_time <= length`).
            let t = (nominal + uniform_duration(&mut rng, SimDuration::ZERO, max_jitter)).min(end);
            let params = FrameParams {
                azimuth: frame as f32 * 0.02,
                ..FrameParams::default()
            };
            proto.push((t, JobKind::Interactive { user, action }, dataset, params));
            nominal += self.interactive.period;
            frame += 1;
        }
    }

    /// Expected number of interactive jobs (exact for
    /// [`ActionBehavior::FullLength`], first-order for sessions).
    pub fn expected_interactive_jobs(&self) -> f64 {
        let per_slot_rate = self.length.as_secs_f64() / self.interactive.period.as_secs_f64();
        match self.interactive.behavior {
            ActionBehavior::FullLength => self.interactive.slots as f64 * per_slot_rate,
            ActionBehavior::Sessions {
                mean_action,
                mean_think,
            } => {
                let duty = mean_action.as_secs_f64()
                    / (mean_action.as_secs_f64() + mean_think.as_secs_f64());
                self.interactive.slots as f64 * per_slot_rate * duty
            }
        }
    }

    /// Expected number of batch jobs.
    pub fn expected_batch_jobs(&self) -> f64 {
        self.batch.submissions as f64 * (self.batch.frames_min + self.batch.frames_max) as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(behavior: ActionBehavior, batch: BatchModel) -> WorkloadSpec {
        WorkloadSpec {
            length: SimDuration::from_secs(60),
            interactive: InteractiveModel {
                slots: 6,
                period: SimDuration::from_millis(30),
                behavior,
            },
            batch,
            dataset_count: 6,
            dataset_choice: DatasetChoice::Uniform,
            seed: 7,
        }
    }

    #[test]
    fn full_length_job_count_is_exact() {
        let s = spec(ActionBehavior::FullLength, BatchModel::none());
        let jobs = s.generate();
        // 6 slots x (60 s / 30 ms) = ~12000 jobs, the Scenario 1 shape
        // (each action loses at most one frame to its phase offset).
        assert!((11_994..=12_000).contains(&jobs.len()), "{}", jobs.len());
        assert_eq!(s.expected_interactive_jobs(), 12_000.0);
        assert!(jobs.iter().all(|j| j.kind.is_interactive()));
    }

    #[test]
    fn full_length_slots_use_distinct_datasets() {
        let s = spec(ActionBehavior::FullLength, BatchModel::none());
        let jobs = s.generate();
        for j in &jobs {
            let user = j.kind.user();
            assert_eq!(j.dataset.0, user.0 % 6);
        }
    }

    #[test]
    fn jobs_are_sorted_with_dense_ids() {
        let s = spec(
            ActionBehavior::Sessions {
                mean_action: SimDuration::from_secs(4),
                mean_think: SimDuration::from_millis(550),
            },
            BatchModel {
                submissions: 5,
                frames_min: 10,
                frames_max: 20,
                window_frac: 0.8,
            },
        );
        let jobs = s.generate();
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i as u64));
            if i > 0 {
                assert!(j.issue_time >= jobs[i - 1].issue_time);
            }
        }
    }

    #[test]
    fn sessions_job_count_near_expectation() {
        let s = spec(
            ActionBehavior::Sessions {
                mean_action: SimDuration::from_secs(4),
                mean_think: SimDuration::from_millis(550),
            },
            BatchModel::none(),
        );
        let jobs = s.generate();
        let expected = s.expected_interactive_jobs();
        let got = jobs.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.15,
            "got {got}, expected about {expected}"
        );
    }

    #[test]
    fn batch_jobs_share_submission_time_and_dataset() {
        let s = spec(
            ActionBehavior::FullLength,
            BatchModel {
                submissions: 3,
                frames_min: 5,
                frames_max: 5,
                window_frac: 0.5,
            },
        );
        let jobs = s.generate();
        let batch: Vec<&Job> = jobs.iter().filter(|j| !j.kind.is_interactive()).collect();
        assert_eq!(batch.len(), 15);
        for sub in 0..3u64 {
            let frames: Vec<&&Job> = batch
                .iter()
                .filter(
                    |j| matches!(j.kind, JobKind::Batch { request, .. } if request == BatchId(sub)),
                )
                .collect();
            assert_eq!(frames.len(), 5);
            assert!(frames
                .windows(2)
                .all(|w| w[0].issue_time == w[1].issue_time));
            assert!(frames.windows(2).all(|w| w[0].dataset == w[1].dataset));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec(
            ActionBehavior::Sessions {
                mean_action: SimDuration::from_secs(2),
                mean_think: SimDuration::from_secs(1),
            },
            BatchModel {
                submissions: 4,
                frames_min: 2,
                frames_max: 9,
                window_frac: 0.9,
            },
        );
        assert_eq!(s.generate(), s.generate());
        let mut other = s;
        other.seed = 8;
        assert_ne!(s.generate(), other.generate());
    }

    #[test]
    fn zipf_skews_toward_low_indices() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let choice = DatasetChoice::Zipf { s: 1.2 };
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[choice.sample(&mut rng, 8) as usize] += 1;
        }
        assert!(
            counts[0] > counts[3],
            "dataset 0 must be hotter: {counts:?}"
        );
        assert!(
            counts[3] > counts[7],
            "skew must be monotone-ish: {counts:?}"
        );
        assert!(
            counts.iter().all(|&c| c > 0),
            "tail still sampled: {counts:?}"
        );
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let choice = DatasetChoice::Zipf { s: 0.0 };
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[choice.sample(&mut rng, 4) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (1700..=2300).contains(&c),
                "near-uniform expected: {counts:?}"
            );
        }
    }

    #[test]
    fn action_ids_are_unique_per_burst() {
        let s = spec(
            ActionBehavior::Sessions {
                mean_action: SimDuration::from_secs(1),
                mean_think: SimDuration::from_secs(1),
            },
            BatchModel::none(),
        );
        let jobs = s.generate();
        // Within one action id, all jobs share a user and a dataset.
        let mut per_action: std::collections::HashMap<ActionId, (UserId, DatasetId)> =
            std::collections::HashMap::new();
        for j in &jobs {
            if let JobKind::Interactive { user, action } = j.kind {
                let entry = per_action.entry(action).or_insert((user, j.dataset));
                assert_eq!(entry.0, user);
                assert_eq!(entry.1, j.dataset);
            }
        }
        assert!(per_action.len() > 6, "sessions should produce many actions");
    }
}

#[cfg(test)]
mod wrap_tests {
    use super::*;

    #[test]
    fn full_length_slots_wrap_over_fewer_datasets() {
        let spec = WorkloadSpec {
            length: SimDuration::from_secs(1),
            interactive: InteractiveModel {
                slots: 5,
                period: SimDuration::from_millis(100),
                behavior: ActionBehavior::FullLength,
            },
            batch: BatchModel::none(),
            dataset_count: 2,
            dataset_choice: DatasetChoice::Uniform,
            seed: 11,
        };
        let jobs = spec.generate();
        assert!(!jobs.is_empty());
        for j in &jobs {
            let user = j.kind.user();
            assert_eq!(j.dataset.0, user.0 % 2, "slot {user} wraps over 2 datasets");
        }
    }

    #[test]
    fn request_jitter_stays_within_a_tenth_period() {
        let spec = WorkloadSpec {
            length: SimDuration::from_secs(2),
            interactive: InteractiveModel {
                slots: 1,
                period: SimDuration::from_millis(30),
                behavior: ActionBehavior::FullLength,
            },
            batch: BatchModel::none(),
            dataset_count: 1,
            dataset_choice: DatasetChoice::Uniform,
            seed: 3,
        };
        let jobs = spec.generate();
        // Consecutive requests of one action are 30 ms +- 10% apart
        // (bounded drift: nominal grid plus per-request jitter).
        for w in jobs.windows(2) {
            let gap = w[1].issue_time - w[0].issue_time;
            assert!(
                gap >= SimDuration::from_millis(27) && gap <= SimDuration::from_millis(33),
                "gap {gap} out of range"
            );
        }
    }
}
