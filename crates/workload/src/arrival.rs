//! Seeded random arrival helpers. All sampling goes through explicit
//! `StdRng` instances so every workload is reproducible bit-for-bit.

use rand::{Rng, RngExt};
use vizsched_core::time::SimDuration;

/// Sample an exponentially distributed duration with the given mean
/// (inter-arrival times, action/think durations).
pub fn exp_duration<R: Rng>(rng: &mut R, mean: SimDuration) -> SimDuration {
    if mean.is_zero() {
        return SimDuration::ZERO;
    }
    let u: f64 = rng.random_range(0.0..1.0);
    // Inverse CDF; (1 - u) never hits 0 because the range excludes 1.
    let x = -(1.0 - u).ln();
    mean.mul_f64(x)
}

/// Sample a uniform duration in `[lo, hi]`.
pub fn uniform_duration<R: Rng>(rng: &mut R, lo: SimDuration, hi: SimDuration) -> SimDuration {
    assert!(lo <= hi, "empty duration range");
    SimDuration::from_micros(rng.random_range(lo.as_micros()..=hi.as_micros()))
}

/// Sample a uniform integer in `[lo, hi]`.
pub fn uniform_u32<R: Rng>(rng: &mut R, lo: u32, hi: u32) -> u32 {
    assert!(lo <= hi, "empty integer range");
    rng.random_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_duration_has_roughly_the_right_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean = SimDuration::from_millis(100);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| exp_duration(&mut rng, mean).as_micros())
            .sum();
        let sample_mean = total as f64 / n as f64;
        let expected = mean.as_micros() as f64;
        assert!(
            (sample_mean - expected).abs() / expected < 0.05,
            "sample mean {sample_mean} vs expected {expected}"
        );
    }

    #[test]
    fn exp_duration_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(exp_duration(&mut rng, SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn uniform_duration_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1000 {
            let d = uniform_duration(&mut rng, lo, hi);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| exp_duration(&mut rng, SimDuration::from_secs(1)).as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
