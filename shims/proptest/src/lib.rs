//! Offline stand-in for `proptest`: a deterministic property-test runner
//! with the strategy combinators this workspace uses (integer ranges,
//! tuples, `collection::vec`, `sample::select`, `prop_map`, `any`).
//!
//! Differences from upstream: no shrinking (failures report the case
//! index, and re-running is deterministic, so the failing input is
//! recoverable), and value streams do not match upstream proptest.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy producing exactly `self.0`.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform values of a primitive type (see [`crate::arbitrary::any`]).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any_int!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// A strategy over the whole domain of `T` (bool and unsigned ints).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A `Vec` of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The [`vec()`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Pick one element of `options` uniformly.
    pub fn select<T: Clone, O: Into<SelectOptions<T>>>(options: O) -> Select<T> {
        Select {
            options: options.into().0,
        }
    }

    /// Owned option list for [`select`].
    pub struct SelectOptions<T>(Vec<T>);

    impl<T: Clone> From<Vec<T>> for SelectOptions<T> {
        fn from(v: Vec<T>) -> Self {
            SelectOptions(v)
        }
    }

    impl<T: Clone> From<&[T]> for SelectOptions<T> {
        fn from(v: &[T]) -> Self {
            SelectOptions(v.to_vec())
        }
    }

    impl<T: Clone, const N: usize> From<&[T; N]> for SelectOptions<T> {
        fn from(v: &[T; N]) -> Self {
            SelectOptions(v.to_vec())
        }
    }

    /// The [`select`] strategy.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over empty options");
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod config {
    /// Runner configuration; only `cases` is honoured by this shim.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod test_runner {
    /// SplitMix64 generator seeded per test case, so failures reproduce.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for case number `case`.
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_CAFE_F00D_D00D,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Re-export of the crate's strategy modules under the conventional
    /// `prop::` alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `ProptestConfig::cases`
/// generated inputs. The case index is reported on panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unused_mut)]
        fn $name() {
            let __config: $crate::config::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let __guard = $crate::CaseGuard::new(stringify!($name), __case);
                {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
                __guard.disarm();
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::config::ProptestConfig::default()) $($rest)*);
    };
}

/// Prints the failing case index if a property body panics.
pub struct CaseGuard {
    name: &'static str,
    case: u64,
    armed: bool,
}

impl CaseGuard {
    /// Arm a guard for one case.
    pub fn new(name: &'static str, case: u64) -> Self {
        CaseGuard {
            name,
            case,
            armed: true,
        }
    }

    /// The case finished without panicking.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed {
            eprintln!(
                "proptest shim: property '{}' failed at case {} (deterministic; re-run reproduces)",
                self.name, self.case
            );
        }
    }
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip cases that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..6), v in prop::collection::vec(0usize..4, 1..8)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn select_and_map(x in prop::sample::select(&[2usize, 4, 8]).prop_map(|v| v * 10)) {
            prop_assert!(x == 20 || x == 40 || x == 80);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
