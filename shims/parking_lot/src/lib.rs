//! Offline stand-in for `parking_lot`: a non-poisoning `Mutex` over
//! `std::sync::Mutex` (poisoned locks are recovered transparently, which
//! matches parking_lot's no-poisoning semantics).

use std::fmt;
use std::sync::MutexGuard as StdGuard;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn locks_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
