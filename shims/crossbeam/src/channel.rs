//! A Mutex+Condvar MPMC channel mirroring `crossbeam_channel`'s API.
//!
//! Senders and receivers are cloneable; dropping the last sender
//! disconnects receivers (and vice versa). `select!` is implemented by
//! polling with a short park, which is ample for the workloads here
//! (the service head loop waits on a 30 ms ticker).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    cap: Option<usize>,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message or disconnect arrives (wakes receivers).
    available: Condvar,
    /// Signalled when capacity frees up (wakes bounded senders).
    space: Condvar,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Error returned when every receiver is gone; carries the message back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned when every sender is gone and the queue is drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Non-blocking receive outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Disconnected and drained.
    Disconnected,
}

/// Timed receive outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with nothing queued.
    Timeout,
    /// Disconnected and drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// An unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// A bounded MPMC channel; `send` blocks when `cap` messages are queued.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            cap,
        }),
        available: Condvar::new(),
        space: Condvar::new(),
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// A channel that yields the current [`Instant`] every `period`, dropping
/// ticks nobody consumed (at most one tick is ever queued).
pub fn tick(period: Duration) -> Receiver<Instant> {
    let (tx, rx) = bounded::<Instant>(1);
    std::thread::spawn(move || loop {
        std::thread::sleep(period);
        if matches!(
            tx.try_send(Instant::now()),
            Err(TrySendError::Disconnected(_))
        ) {
            break;
        }
    });
    rx
}

/// Non-blocking send outcomes; both variants hand the message back.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> Sender<T> {
    /// Queue `value`, blocking while a bounded channel is full. Fails only
    /// when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match state.cap {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .inner
                        .space
                        .wait(state)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Queue `value` without blocking: fails with [`TrySendError::Full`]
    /// when a bounded channel is at capacity (handing the message back so
    /// callers can shed it explicitly) and with
    /// [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.inner.lock();
        if state.receivers == 0 {
            drop(state);
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = state.cap {
            if state.queue.len() >= cap {
                drop(state);
                return Err(TrySendError::Full(value));
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.lock().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.inner.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message or disconnection.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.inner.space.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .inner
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.inner.lock();
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.inner.space.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.inner.space.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (s, _) = self
                .inner
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = s;
        }
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }

    /// Queued message count.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True if a `recv` would complete without blocking (message queued or
    /// channel disconnected). Used by the polling `select!`.
    pub fn ready_hint(&self) -> bool {
        let state = self.inner.lock();
        !state.queue.is_empty() || state.senders == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.lock().receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.receivers -= 1;
        let last = state.receivers == 0;
        drop(state);
        if last {
            self.inner.space.notify_all();
        }
    }
}

/// Wait on several `recv` operations at once, running exactly one arm.
///
/// Supported form (arms are `recv(rx) -> pat => body`; like the real
/// macro, block bodies may omit the separating comma):
///
/// ```ignore
/// select! {
///     recv(a) -> msg => { ... }
///     recv(b) -> msg => do_thing(msg),
/// }
/// ```
///
/// Implementation note: readiness is detected by polling with a 50 µs
/// park. Bodies execute at the macro's block level, so `break`/`continue`
/// inside an arm target the caller's enclosing loop, as with the real
/// `crossbeam_channel::select!`. With a single receiver per channel (the
/// only usage pattern in this workspace) the post-poll `recv` cannot
/// steal from another consumer.
#[macro_export]
macro_rules! select {
    // Arm munchers: normalise every arm body to a block, with or without
    // a trailing comma. Block rules come first so `{ ... }` bodies are not
    // consumed as expressions (which would then demand a comma).
    (@munch [$($acc:tt)*] recv($r:expr) -> $p:pat => $body:block , $($rest:tt)*) => {
        $crate::channel::select!(@munch [$($acc)* {recv($r) -> $p => $body}] $($rest)*)
    };
    (@munch [$($acc:tt)*] recv($r:expr) -> $p:pat => $body:block $($rest:tt)*) => {
        $crate::channel::select!(@munch [$($acc)* {recv($r) -> $p => $body}] $($rest)*)
    };
    (@munch [$($acc:tt)*] recv($r:expr) -> $p:pat => $body:expr , $($rest:tt)*) => {
        $crate::channel::select!(@munch [$($acc)* {recv($r) -> $p => {$body}}] $($rest)*)
    };
    (@munch [$($acc:tt)*] recv($r:expr) -> $p:pat => $body:expr) => {
        $crate::channel::select!(@munch [$($acc)* {recv($r) -> $p => {$body}}])
    };
    // All arms munched: expand the poll loop, then run the ready arm's
    // body at this block level so `break`/`continue` reach the caller's
    // enclosing loop.
    (@munch [$({recv($r:expr) -> $p:pat => $body:block})+]) => {{
        let __ready: usize = loop {
            let mut __i = 0usize;
            let mut __found = usize::MAX;
            $(
                #[allow(unused_assignments)]
                {
                    if __found == usize::MAX && $r.ready_hint() {
                        __found = __i;
                    }
                    __i += 1;
                }
            )+
            if __found != usize::MAX {
                break __found;
            }
            std::thread::sleep(std::time::Duration::from_micros(50));
        };
        let mut __i = 0usize;
        $(
            #[allow(unused_assignments)]
            {
                if __ready == __i {
                    let $p = $r.recv();
                    $body
                }
                __i += 1;
            }
        )+
    }};
    ($($tokens:tt)+) => {
        $crate::channel::select!(@munch [] $($tokens)+)
    };
}

// `crossbeam::channel::select!` path compatibility.
pub use crate::select;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn drop_sender_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn drop_receiver_fails_send() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn timeout_expires() {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = bounded(2);
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_send_sheds_on_full_and_disconnect() {
        let (tx, rx) = bounded::<u32>(1);
        assert!(tx.try_send(1).is_ok());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        assert!(tx.try_send(3).is_ok());
        drop(rx);
        assert!(matches!(tx.try_send(4), Err(TrySendError::Disconnected(4))));
    }

    #[test]
    fn ticker_fires() {
        let rx = tick(Duration::from_millis(5));
        assert!(rx.recv_timeout(Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn select_runs_ready_arm_and_breaks_outer_loop() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(7).unwrap();
        let got = loop {
            select! {
                recv(rx_a) -> msg => break Some(msg.unwrap()),
                recv(rx_b) -> _msg => unreachable!(),
            }
        };
        assert_eq!(got, Some(7));
    }
}
