//! Offline stand-in for `crossbeam`: MPMC channels with the subset of the
//! `crossbeam-channel` API this workspace uses (`unbounded`, `bounded`,
//! `tick`, `select!`, timeouts).

pub mod channel;
