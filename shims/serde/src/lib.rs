//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! See `shims/README.md`. The real serde data model is not implemented;
//! these traits exist so `#[derive(Serialize, Deserialize)]` annotations
//! compile without a registry.

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
