//! Offline stand-in for a mio-style readiness poller: the minimal
//! level-triggered `Poller` / `Events` / `Token` / `Waker` surface the
//! event-driven service plane needs, with no external dependencies.
//!
//! Backends, selected at compile time:
//!
//! - **Linux**: `epoll(7)` through hand-declared libc externs (the C
//!   library is already linked by `std`, so this needs no crates).
//! - **Other unix**: `poll(2)`, rebuilding the descriptor array per call
//!   from the registration table — O(n) per wait, fine at shim scale.
//! - **Elsewhere**: a timed fallback that sleeps up to 1 ms and reports
//!   every registered source as ready for its registered interests.
//!   Spurious readiness is part of the API contract (consumers must
//!   handle `WouldBlock`), so this degrades throughput, not correctness.
//!
//! All backends are level-triggered: an event repeats on every `poll`
//! until the condition is consumed (bytes read, buffer drained). The
//! [`Waker`] is the cross-thread nudge — `wake()` makes the next (or
//! current) `poll` return an event carrying the waker's token; the
//! consumer acknowledges with [`Waker::clear`] before draining whatever
//! queue the wake announced.

#![warn(rust_2018_idioms)]
#![deny(missing_docs)]

use std::io;
use std::time::Duration;

/// Caller-chosen identifier attached to a registration and echoed on its
/// events.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Token(pub usize);

/// Readiness interests, combined with `|`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest(u8);

impl Interest {
    /// Interested in the source becoming readable.
    pub const READABLE: Interest = Interest(0b01);
    /// Interested in the source becoming writable.
    pub const WRITABLE: Interest = Interest(0b10);

    /// True if this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// True if this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    closed: bool,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The source is readable (or has hung up / errored — reading
    /// surfaces the EOF or error).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// The source is writable.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// The peer hung up or the source errored. Readable is also set so a
    /// consumer that only checks readability still observes the EOF.
    pub fn is_closed(&self) -> bool {
        self.closed
    }
}

/// A reusable batch of events filled by [`Poller::poll`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An event batch holding at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterate the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter()
    }

    /// Number of events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the last poll delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Sources that can be registered: anything exposing a raw descriptor.
#[cfg(unix)]
pub trait Source {
    /// The raw file descriptor to watch.
    fn raw(&self) -> std::os::unix::io::RawFd;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> Source for T {
    fn raw(&self) -> std::os::unix::io::RawFd {
        self.as_raw_fd()
    }
}

/// Sources that can be registered: anything exposing a raw socket.
#[cfg(not(unix))]
pub trait Source {
    /// An identifier for the watched source (raw socket on Windows).
    fn raw(&self) -> u64;
}

#[cfg(all(not(unix), windows))]
impl<T: std::os::windows::io::AsRawSocket> Source for T {
    fn raw(&self) -> u64 {
        self.as_raw_socket() as u64
    }
}

/// The readiness poller.
pub struct Poller {
    sys: sys::Poller,
}

impl Poller {
    /// Create a poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            sys: sys::Poller::new()?,
        })
    }

    /// Watch `source` for `interest`, tagging its events with `token`.
    pub fn register(
        &self,
        source: &impl Source,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.sys.register(source.raw(), token, interest)
    }

    /// Change an existing registration's token or interest.
    pub fn reregister(
        &self,
        source: &impl Source,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.sys.reregister(source.raw(), token, interest)
    }

    /// Stop watching `source`.
    pub fn deregister(&self, source: &impl Source) -> io::Result<()> {
        self.sys.deregister(source.raw())
    }

    /// Block until at least one event is ready, the timeout elapses, or a
    /// [`Waker`] fires. `None` waits forever.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        self.sys.poll(events, timeout)
    }

    /// Create a waker delivering `token` to this poller's `poll`.
    pub fn waker(&self, token: Token) -> io::Result<Waker> {
        Waker::new(self, token)
    }
}

/// Round a timeout up to whole milliseconds (never busy-spin a sub-ms
/// timeout down to zero); `None` becomes -1 (infinite).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => d.as_millis().max(1).min(i32::MAX as u128) as i32,
    }
}

// ---------------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------------

/// A cross-thread nudge: `wake()` makes the paired poller return an event
/// with the waker's token. Cheap when already pending (an atomic test).
///
/// Single-consumer protocol: the polling thread, on receiving the waker's
/// token, calls [`Waker::clear`] *before* draining the queue the wake
/// announced; producers enqueue *before* calling `wake()`. That ordering
/// makes lost wakeups impossible and bounds the underlying signal to one
/// pending byte.
pub struct Waker {
    sys: sys::Waker,
    armed: std::sync::atomic::AtomicBool,
}

impl Waker {
    /// Create a waker registered with `poller` under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        Ok(Waker {
            sys: sys::Waker::new(&poller.sys, token)?,
            armed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Make the paired poller return (now or on its next `poll`) with this
    /// waker's token. Idempotent until [`Waker::clear`].
    pub fn wake(&self) -> io::Result<()> {
        use std::sync::atomic::Ordering;
        if !self.armed.swap(true, Ordering::AcqRel) {
            self.sys.signal()?;
        }
        Ok(())
    }

    /// Acknowledge a delivered wake; the next [`Waker::wake`] signals
    /// again. Call from the polling thread when the waker's token arrives.
    pub fn clear(&self) {
        use std::sync::atomic::Ordering;
        self.sys.drain();
        self.armed.store(false, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Linux backend: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use super::{timeout_ms, Event, Events, Interest, Token};
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // The kernel ABI packs epoll_event on x86; glibc mirrors that with
    // __EPOLL_PACKED, so the extern declarations below must match.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut EpollEvent, max: c_int, timeout: c_int) -> c_int;
        fn eventfd(initval: u32, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: c_int = 0x80000;

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.is_readable() {
            bits |= EPOLLIN;
        }
        if interest.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub struct Poller {
        epfd: RawFd,
    }

    // The epoll fd is used from both the polling thread and registering
    // threads; the kernel serializes epoll_ctl/epoll_wait internally.
    unsafe impl Send for Poller {}
    unsafe impl Sync for Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token.0 as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(drop)
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // A dummy event keeps pre-2.6.9 kernels happy (NULL was EFAULT).
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            let mut buf = vec![EpollEvent { events: 0, data: 0 }; events.capacity];
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        buf.len() as c_int,
                        timeout_ms(timeout),
                    )
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for raw in &buf[..n] {
                let bits = { raw.events };
                let closed = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.inner.push(Event {
                    token: Token({ raw.data } as usize),
                    readable: bits & EPOLLIN != 0 || closed,
                    writable: bits & EPOLLOUT != 0,
                    closed,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    pub struct Waker {
        fd: RawFd,
    }

    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC) })?;
            poller.register(fd, token, Interest::READABLE)?;
            Ok(Waker { fd })
        }

        pub fn signal(&self) -> io::Result<()> {
            let one: u64 = 1;
            let n = unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
            if n == 8 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        /// Reset the eventfd counter. The armed flag bounds pending
        /// signals to one, so a single 8-byte read never blocks here.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            unsafe { read(self.fd, buf.as_mut_ptr().cast(), 8) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }
}

// ---------------------------------------------------------------------------
// Other unix backend: poll(2)
// ---------------------------------------------------------------------------

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    use super::{timeout_ms, Event, Events, Interest, Token};
    use std::io;
    use std::os::raw::{c_int, c_short, c_void};
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: usize, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x1;
    const POLLOUT: c_short = 0x4;
    const POLLERR: c_short = 0x8;
    const POLLHUP: c_short = 0x10;

    pub struct Poller {
        registry: Mutex<Vec<(RawFd, Token, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registry: Mutex::new(Vec::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            if reg.iter().any(|(f, ..)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            reg.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            for entry in reg.iter_mut() {
                if entry.0 == fd {
                    *entry = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            let before = reg.len();
            reg.retain(|(f, ..)| *f != fd);
            if reg.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            let snapshot: Vec<(RawFd, Token, Interest)> = self.registry.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: if interest.is_readable() { POLLIN } else { 0 }
                        | if interest.is_writable() { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = loop {
                let ret = unsafe { poll(fds.as_mut_ptr(), fds.len(), timeout_ms(timeout)) };
                if ret >= 0 {
                    break ret as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pollfd, &(_, token, _)) in fds.iter().zip(&snapshot) {
                let bits = pollfd.revents;
                if bits == 0 {
                    continue;
                }
                let closed = bits & (POLLERR | POLLHUP) != 0;
                events.inner.push(Event {
                    token,
                    readable: bits & POLLIN != 0 || closed,
                    writable: bits & POLLOUT != 0,
                    closed,
                });
                if events.inner.len() == events.capacity {
                    break;
                }
            }
            Ok(())
        }
    }

    pub struct Waker {
        read_fd: RawFd,
        write_fd: RawFd,
    }

    unsafe impl Send for Waker {}
    unsafe impl Sync for Waker {}

    impl Waker {
        pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
            let mut fds = [0 as c_int; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            poller.register(fds[0], token, Interest::READABLE)?;
            Ok(Waker {
                read_fd: fds[0],
                write_fd: fds[1],
            })
        }

        pub fn signal(&self) -> io::Result<()> {
            let byte = 1u8;
            let n = unsafe { write(self.write_fd, (&byte as *const u8).cast(), 1) };
            if n == 1 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        /// The armed flag bounds the pipe to one pending byte, so a single
        /// one-byte read never blocks here.
        pub fn drain(&self) {
            let mut buf = [0u8; 1];
            unsafe { read(self.read_fd, buf.as_mut_ptr().cast(), 1) };
        }
    }

    impl Drop for Waker {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable fallback: timed spurious readiness
// ---------------------------------------------------------------------------

#[cfg(not(unix))]
mod sys {
    use super::{Event, Events, Interest, Token};
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// No OS readiness facility: sleep briefly and report every
    /// registration ready for its interests. Consumers already tolerate
    /// spurious readiness (they handle `WouldBlock`), so this trades
    /// efficiency, not correctness.
    pub struct Poller {
        registry: Mutex<Vec<(u64, Token, Interest)>>,
        wakers: Mutex<Vec<(Arc<AtomicBool>, Token)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registry: Mutex::new(Vec::new()),
                wakers: Mutex::new(Vec::new()),
            })
        }

        pub fn register(&self, key: u64, token: Token, interest: Interest) -> io::Result<()> {
            self.registry.lock().unwrap().push((key, token, interest));
            Ok(())
        }

        pub fn reregister(&self, key: u64, token: Token, interest: Interest) -> io::Result<()> {
            let mut reg = self.registry.lock().unwrap();
            for entry in reg.iter_mut() {
                if entry.0 == key {
                    *entry = (key, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                "source not registered",
            ))
        }

        pub fn deregister(&self, key: u64) -> io::Result<()> {
            self.registry.lock().unwrap().retain(|(k, ..)| *k != key);
            Ok(())
        }

        pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
            let nap = timeout
                .unwrap_or(Duration::from_millis(1))
                .min(Duration::from_millis(1));
            std::thread::sleep(nap);
            for (pending, token) in self.wakers.lock().unwrap().iter() {
                if pending.load(Ordering::Acquire) {
                    events.inner.push(Event {
                        token: *token,
                        readable: true,
                        writable: false,
                        closed: false,
                    });
                }
            }
            for &(_, token, interest) in self.registry.lock().unwrap().iter() {
                if events.inner.len() >= events.capacity {
                    break;
                }
                events.inner.push(Event {
                    token,
                    readable: interest.is_readable(),
                    writable: interest.is_writable(),
                    closed: false,
                });
            }
            Ok(())
        }
    }

    pub struct Waker {
        pending: Arc<AtomicBool>,
    }

    impl Waker {
        pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
            let pending = Arc::new(AtomicBool::new(false));
            poller.wakers.lock().unwrap().push((pending.clone(), token));
            Ok(Waker { pending })
        }

        pub fn signal(&self) -> io::Result<()> {
            self.pending.store(true, Ordering::Release);
            Ok(())
        }

        pub fn drain(&self) {
            self.pending.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKE: Token = Token(9);

    #[test]
    fn listener_and_stream_readiness() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(&listener, LISTENER, Interest::READABLE)
            .unwrap();

        // Nothing pending: a short poll times out empty (the portable
        // fallback may report spuriously, which accept() then refutes).
        let mut events = Events::with_capacity(8);
        poller
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            poller
                .poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events
                .iter()
                .any(|e| e.token() == LISTENER && e.is_readable())
            {
                match listener.accept() {
                    Ok((s, _)) => break s,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("accept: {e}"),
                }
            }
            assert!(std::time::Instant::now() < deadline, "no accept readiness");
        };

        // Data written by the client shows up as stream readability.
        accepted.set_nonblocking(true).unwrap();
        poller
            .register(&accepted, CLIENT, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut stream = accepted;
        while got.len() < 4 {
            poller
                .poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for event in &events {
                if event.token() == CLIENT && event.is_readable() {
                    let mut buf = [0u8; 16];
                    match stream.read(&mut buf) {
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(e) => panic!("read: {e}"),
                    }
                }
            }
            assert!(std::time::Instant::now() < deadline, "no data readiness");
        }
        assert_eq!(&got, b"ping");
        poller.deregister(&stream).unwrap();
        poller.deregister(&listener).unwrap();
    }

    #[test]
    fn waker_crosses_threads() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(poller.waker(WAKE).unwrap());
        let w2 = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller
                .poll(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token() == WAKE) {
                waker.clear();
                break;
            }
            assert!(std::time::Instant::now() < deadline, "wake never arrived");
        }
        handle.join().unwrap();
        // A cleared waker can fire again.
        waker.wake().unwrap();
        poller
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token() == WAKE));
        waker.clear();
    }
}
