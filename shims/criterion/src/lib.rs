//! Offline stand-in for `criterion`: same macro/builder surface, but a
//! lightweight timing loop instead of statistical analysis. Each benchmark
//! runs a short warm-up plus `sample_size` timed iterations and prints the
//! mean per-iteration time. Under `--test` (what `cargo test --benches`
//! passes) every routine executes exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; the shim treats all sizes alike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier combining a function name with a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Per-benchmark measurement driver handed to routines.
pub struct Bencher {
    samples: u64,
    smoke_test: bool,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_test {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        report(start.elapsed(), self.samples);
    }

    /// Time `routine` with a fresh `setup()` value per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke_test {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        report(total, self.samples);
    }
}

fn report(total: Duration, samples: u64) {
    let mean = total / samples.max(1) as u32;
    println!("{mean:>12.2?}/iter over {samples} iters");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group (accepted, unused beyond
    /// the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let _ = n;
        self
    }

    /// Override the measurement window (accepted, ignored).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        let _ = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.criterion
            .run_one(&format!("{}/{}", self.name, id), |b| f(b));
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.criterion
            .run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// End the group. No-op in the shim.
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: u64,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            smoke_test: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Set the timed iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.to_string(), |b| f(b));
        self
    }

    fn run_one(&self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        if self.smoke_test {
            println!("bench {label} ... smoke test");
        } else {
            print!("bench {label:<48} ");
        }
        let mut bencher = Bencher {
            samples: self.sample_size,
            smoke_test: self.smoke_test,
        };
        f(&mut bencher);
    }

    /// Skip any benchmark filter. The shim runs everything.
    pub fn final_summary(&self) {}
}

/// Bundle benchmark functions under a group name, optionally with a
/// configured `Criterion` (`config = ...`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter_batched(
                || vec![k; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn harness_runs_groups_and_targets() {
        criterion_group! {
            name = benches;
            config = Criterion { sample_size: 2, smoke_test: true };
            targets = sample_bench
        }
        benches();
    }
}
