//! Offline stand-in for `rand` 0.10: seedable SplitMix64 generators and
//! the `random_range` sampling surface used by this workspace.
//!
//! Streams are deterministic per seed but do not match upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed 64-bit values.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        SampleRange::sample(range, self)
    }
}

impl<G: Rng + ?Sized> RngExt for G {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i32: u32, i64: u64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The bundled generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: tiny, fast, and statistically solid for simulation use.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        fn step(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// The default "standard" generator.
    pub type StdRng = SplitMix64;

    /// The small/fast generator (same engine in this shim).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng(SplitMix64);

    impl Rng for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for SplitMix64 {
        fn seed_from_u64(seed: u64) -> Self {
            SplitMix64 {
                state: seed ^ 0x5D58_8B65_6C07_8965,
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.step()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(SplitMix64::seed_from_u64(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(
                a.random_range(0u64..=u64::MAX),
                b.random_range(0u64..=u64::MAX)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f = rng.random_range(0.0f64..1.0);
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should spread across the unit interval");
    }
}
