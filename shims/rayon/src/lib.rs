//! Offline stand-in for `rayon`: `into_par_iter` falls back to the
//! sequential iterator. Results are identical; only wall-clock parallelism
//! is lost, which the renderer treats as a performance knob, not a
//! correctness contract.

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelIterator;
}

/// Sequential "parallel" iterator adapters.
pub mod iter {
    /// Conversion into a (sequential, in this shim) parallel iterator.
    pub trait IntoParallelIterator {
        /// Yielded element type.
        type Item;
        /// The underlying iterator.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert self; downstream `map`/`collect` are plain `Iterator`
        /// combinators.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: Iterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I;
        fn into_par_iter(self) -> I {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_par_iter_matches_sequential() {
        let par: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        let seq: Vec<usize> = (0..10usize).map(|x| x * 2).collect();
        assert_eq!(par, seq);
    }
}
