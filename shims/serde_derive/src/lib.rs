//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The workspace derives these traits only as forward-looking annotations;
//! nothing serializes through serde at run time (JSONL trace export and CSV
//! reports are hand-written). The derives therefore expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
