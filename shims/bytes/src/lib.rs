//! Offline stand-in for `bytes`: cheaply-cloneable immutable byte buffers
//! (`Bytes`), growable builders (`BytesMut`), and little-endian cursor
//! accessors (`Buf`/`BufMut`) — the subset the wire protocol uses.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer with a read cursor.
/// Slicing ([`Bytes::slice`]) shares the underlying allocation — no copy.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// The unread remainder.
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A view of `range` (relative to the unread remainder) sharing the
    /// same allocation — the zero-copy primitive the wire codec's decode
    /// path builds on.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off and return the first `at` bytes of the remainder; `self`
    /// keeps the rest. Both halves share the allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        let head = self.slice(0..at);
        self.start += at;
        head
    }

    /// Recover the underlying `Vec` for reuse if this handle is the last
    /// one referring to the allocation (buffer pooling); otherwise hand
    /// the `Bytes` back. The returned `Vec` is the *full* allocation, not
    /// just the remainder.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, start, end } = self;
        Arc::try_unwrap(data).map_err(|data| Bytes { data, start, end })
    }

    /// How many handles (including this one) share the allocation.
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Wrap an existing `Vec`, keeping its contents and capacity — lets a
    /// buffer pool hand its recycled allocations to the builder API.
    pub fn with_vec(data: Vec<u8>) -> Self {
        BytesMut { data }
    }

    /// Recover the underlying `Vec` (contents and capacity intact).
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read exactly `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underrun");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underrun");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Little-endian write surface.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.get_f32_le(), 1.5);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slices_share_the_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&*mid, &[2, 3, 4]);
        assert_eq!(mid.as_ref().as_ptr(), unsafe { b.as_ref().as_ptr().add(1) });
        let inner = mid.slice(1..2);
        assert_eq!(&*inner, &[3]);
        assert_eq!(b.handle_count(), 3);
    }

    #[test]
    fn split_to_advances_the_remainder() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        let head = b.split_to(3);
        assert_eq!(&*head, &[1, 2, 3]);
        assert_eq!(&*b, &[4]);
    }

    #[test]
    fn reclaim_succeeds_only_for_the_last_handle() {
        let b = Bytes::from(vec![7, 8, 9]);
        let s = b.slice(0..1);
        let b = b.try_reclaim().expect_err("slice still alive");
        drop(s);
        let v = b.try_reclaim().expect("sole handle");
        assert_eq!(v, vec![7, 8, 9]);
    }

    #[test]
    fn slice_buf_reads_advance() {
        let data = [1u8, 0, 0, 0, 9];
        let mut cursor: &[u8] = &data;
        assert_eq!(cursor.get_u32_le(), 1);
        assert_eq!(cursor.get_u8(), 9);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn partial_reads_leave_a_comparable_tail() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        a.get_u8();
        let b = Bytes::from(vec![2, 3, 4]);
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![2, 3, 4]);
    }
}
