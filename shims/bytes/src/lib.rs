//! Offline stand-in for `bytes`: cheaply-cloneable immutable byte buffers
//! (`Bytes`), growable builders (`BytesMut`), and little-endian cursor
//! accessors (`Buf`/`BufMut`) — the subset the wire protocol uses.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer with a read cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
        }
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// The unread remainder.
    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..]
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(v),
            start: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read exactly `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underrun");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Little-endian write surface.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 42);
        assert_eq!(frozen.get_f32_le(), 1.5);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn partial_reads_leave_a_comparable_tail() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        a.get_u8();
        let b = Bytes::from(vec![2, 3, 4]);
        assert_eq!(a, b);
        assert_eq!(a.to_vec(), vec![2, 3, 4]);
    }
}
