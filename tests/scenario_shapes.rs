//! Qualitative reproduction checks: shortened versions of the paper's
//! scenarios must reproduce the *shape* of Figs. 4-7 and Table III —
//! who wins, by roughly what factor — every time the suite runs.

use vizsched_core::sched::SchedulerKind;
use vizsched_core::time::SimDuration;
use vizsched_metrics::SchedulerReport;
use vizsched_sim::{RunOptions, SimConfig, Simulation};
use vizsched_workload::Scenario;

fn run(scenario: &Scenario, kind: SchedulerKind) -> SchedulerReport {
    let mut config = SimConfig::new(scenario.cluster.clone(), scenario.cost, scenario.chunk_max);
    config.exec_jitter = 0.05;
    config.warm_start = true;
    let sim = Simulation::new(config, scenario.datasets());
    let outcome = sim.run_opts(
        scenario.jobs(),
        RunOptions::new(kind).label(&scenario.label),
    );
    assert_eq!(
        outcome.incomplete_jobs,
        0,
        "{} left jobs incomplete",
        kind.name()
    );
    SchedulerReport::from_run(&outcome.record)
}

/// Scenario 1 (Fig. 4): pure interactive load, all data cacheable.
#[test]
fn scenario1_shape_holds() {
    let scenario = Scenario::table2(1).shortened(SimDuration::from_secs(15));
    let target = scenario.target_fps;

    let ours = run(&scenario, SchedulerKind::Ours);
    let fcfsl = run(&scenario, SchedulerKind::Fcfsl);
    let fcfsu = run(&scenario, SchedulerKind::Fcfsu);
    let fcfs = run(&scenario, SchedulerKind::Fcfs);

    // OURS and FCFSL hit the target with near-perfect reuse.
    assert!(ours.fps.mean > target * 0.95, "OURS fps {}", ours.fps.mean);
    assert!(
        fcfsl.fps.mean > target * 0.95,
        "FCFSL fps {}",
        fcfsl.fps.mean
    );
    assert!(ours.hit_rate > 0.99, "OURS hit rate {}", ours.hit_rate);
    assert!(
        ours.interactive_latency.mean < 0.2,
        "OURS latency {}",
        ours.interactive_latency.mean
    );

    // FCFSU pays whole-cluster overhead per frame: clearly below target,
    // roughly half.
    assert!(
        fcfsu.fps.mean < target * 0.75,
        "FCFSU fps {}",
        fcfsu.fps.mean
    );
    assert!(
        fcfsu.fps.mean > target * 0.3,
        "FCFSU fps {}",
        fcfsu.fps.mean
    );

    // Locality-blind FCFS collapses: thrashing hit rate and ~0 fps.
    assert!(fcfs.fps.mean < 2.0, "FCFS fps {}", fcfs.fps.mean);
    assert!(fcfs.hit_rate < 0.6, "FCFS hit rate {}", fcfs.hit_rate);
}

/// Scenario 2 (Fig. 5): interactive + batch, data exceeds memory.
#[test]
fn scenario2_shape_holds() {
    let scenario = Scenario::table2(2).shortened(SimDuration::from_secs(30));
    let target = scenario.target_fps;

    let ours = run(&scenario, SchedulerKind::Ours);
    let fcfsl = run(&scenario, SchedulerKind::Fcfsl);
    let fcfsu = run(&scenario, SchedulerKind::Fcfsu);

    // OURS keeps interactive close to target by deferring batch work...
    assert!(ours.fps.mean > target * 0.8, "OURS fps {}", ours.fps.mean);
    // ...while the interleaving policies drop well below it.
    assert!(
        fcfsl.fps.mean < ours.fps.mean,
        "FCFSL {} vs OURS {}",
        fcfsl.fps.mean,
        ours.fps.mean
    );
    assert!(
        fcfsu.fps.mean < target * 0.75,
        "FCFSU fps {}",
        fcfsu.fps.mean
    );

    // OURS interactive latency beats both conventional locality schemes.
    assert!(
        ours.interactive_latency.mean < fcfsl.interactive_latency.mean,
        "OURS {} vs FCFSL {}",
        ours.interactive_latency.mean,
        fcfsl.interactive_latency.mean
    );

    // Batch still completes despite deferral, and its latency stays within
    // a small factor of FCFSL's. (The paper's stronger "lowest batch
    // latency" result needs FCFSL's swap thrash to compound over the full
    // 120 s run — the `scenario` binary reproduces it; see EXPERIMENTS.md.)
    assert!(ours.batch_jobs > 0);
    assert!(
        ours.batch_latency.mean < fcfsl.batch_latency.mean * 2.0,
        "OURS batch {} vs FCFSL batch {}",
        ours.batch_latency.mean,
        fcfsl.batch_latency.mean
    );
}

/// Table III shape: hit rates and scheduling-cost amortization.
#[test]
fn table3_shape_holds() {
    let scenario = Scenario::table2(1).shortened(SimDuration::from_secs(10));
    let ours = run(&scenario, SchedulerKind::Ours);
    let fs = run(&scenario, SchedulerKind::Fs);
    let fcfsu = run(&scenario, SchedulerKind::Fcfsu);

    // Locality-aware policies reuse nearly everything; FS reuses little.
    assert!(ours.hit_rate > 0.99, "OURS {}", ours.hit_rate);
    assert!(fcfsu.hit_rate > 0.99, "FCFSU {}", fcfsu.hit_rate);
    assert!(fs.hit_rate < 0.6, "FS {}", fs.hit_rate);

    // Scheduling stays far below the paper's own budget (tens of us/job).
    assert!(
        ours.sched_cost_us < 100.0,
        "OURS cost {}",
        ours.sched_cost_us
    );
}

/// Fault tolerance (§VI-D): a node crash mid-run must not lose jobs.
#[test]
fn crash_during_scenario_is_absorbed() {
    use vizsched_core::ids::NodeId;
    use vizsched_core::time::SimTime;
    use vizsched_sim::Fault;

    let scenario = Scenario::table2(1).shortened(SimDuration::from_secs(8));
    let mut config = SimConfig::new(scenario.cluster.clone(), scenario.cost, scenario.chunk_max);
    config.exec_jitter = 0.05;
    config.warm_start = true;
    config.faults = vec![
        Fault {
            time: SimTime::from_secs(3),
            node: NodeId(2),
            crash: true,
        },
        Fault {
            time: SimTime::from_secs(6),
            node: NodeId(2),
            crash: false,
        },
    ];
    let sim = Simulation::new(config, scenario.datasets());
    let outcome = sim.run_opts(
        scenario.jobs(),
        RunOptions::new(SchedulerKind::Ours).label("crash"),
    );
    assert_eq!(
        outcome.incomplete_jobs, 0,
        "crash must not lose rendering jobs"
    );
    let report = SchedulerReport::from_run(&outcome.record);
    // Seven healthy nodes still carry the load near target.
    assert!(report.fps.mean > 20.0, "fps {}", report.fps.mean);
}

/// Scenario 3 (Fig. 6) shape at 64-node scale, shortened: OURS near target
/// with sub-second latency while FCFSU sinks to roughly a third of target.
#[test]
fn scenario3_shape_holds() {
    let scenario = Scenario::table2(3).shortened(SimDuration::from_secs(20));
    let target = scenario.target_fps;
    let ours = run(&scenario, SchedulerKind::Ours);
    let fcfsu = run(&scenario, SchedulerKind::Fcfsu);
    assert!(ours.fps.mean > target * 0.9, "OURS fps {}", ours.fps.mean);
    assert!(
        ours.interactive_latency.mean < 1.0,
        "OURS latency {} (paper: < 1 s)",
        ours.interactive_latency.mean
    );
    assert!(ours.hit_rate > 0.99, "OURS hit {}", ours.hit_rate);
    // FCFSU: whole-cluster jobs on 64 nodes -> far below target.
    assert!(
        fcfsu.fps.mean < target * 0.5,
        "FCFSU fps {}",
        fcfsu.fps.mean
    );
}
