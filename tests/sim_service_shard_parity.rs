//! Sharded simulator-vs-service parity: with the cluster split behind the
//! consistent-hash routing tier, both substrates drive the *same*
//! `vizsched-runtime` sharded control plane, so an identical serialized
//! workload over an identical catalog must route every job to the same
//! shard AND place every task on the same global node.
//!
//! The placement-determinism argument of `sim_service_parity.rs` carries
//! over per shard: each dataset bricks into exactly `NODES / SHARDS`
//! chunks — the size of one shard's node slice — so a cold job spreads
//! one chunk per in-shard node through index tie-breaks and a warm job
//! maps every chunk to its unique cache holder, never comparing measured
//! estimate magnitudes. The routing layer above is purely ring-arithmetic
//! on `(dataset, shard count)`, independent of any clock.
//!
//! The file also holds the sim-only scale check of the sharded design:
//! a 1024-node cluster under 16 shard-local cycle loops completes a mixed
//! interactive/batch workload with every job's tasks placed inside the
//! span of the shard that owned the job at dispatch time.

use std::sync::Arc;
use std::time::Duration;
use vizsched_core::prelude::*;
use vizsched_metrics::{CollectingProbe, TraceEvent};
use vizsched_routing::ShardMap;
use vizsched_service::{ChunkStore, ServiceClient, ServiceConfig, StoreDataset, VizService};
use vizsched_sim::{RunOptions, SimConfig, Simulation};
use vizsched_volume::Field;
use vizsched_workload::Scenario;

const NODES: usize = 4;
const SHARDS: usize = 2;
const BRICKS: usize = NODES / SHARDS;
const MEM_QUOTA: u64 = 1 << 20;

/// (job, task, chunk, node) — sorted, so dispatch interleaving across
/// cycles doesn't matter, only the placements themselves.
type AssignKey = (u64, u32, u64, u32);

fn assignments(events: &[TraceEvent]) -> Vec<AssignKey> {
    let mut keys: Vec<AssignKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Assignment {
                job,
                task,
                chunk,
                node,
                ..
            } => Some((job.0, *task, chunk.as_u64(), node.0)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// (job, shard) routing decisions, sorted by job.
fn shard_assignments(events: &[TraceEvent]) -> Vec<(u64, u32)> {
    let mut keys: Vec<(u64, u32)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ShardAssigned { job, shard, .. } => Some((job.0, shard.0)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// Fold the routing events into each job's final owner, then check every
/// task placement landed inside that owner's node span.
fn assert_placements_respect_shards(tag: &str, events: &[TraceEvent], map: &ShardMap) {
    let mut owner = std::collections::HashMap::new();
    for e in events {
        match e {
            TraceEvent::ShardAssigned { job, shard, .. } => {
                owner.insert(job.0, *shard);
            }
            TraceEvent::ShardMigrated { job, to, .. } => {
                owner.insert(job.0, *to);
            }
            TraceEvent::Assignment { job, node, .. } => {
                let shard = owner
                    .get(&job.0)
                    .unwrap_or_else(|| panic!("{tag}: J{} dispatched before routing", job.0));
                let span = map.span(*shard);
                assert!(
                    (span.base..span.base + span.nodes).contains(&node.0),
                    "{tag}: J{} owned by {shard} but placed on R{} outside [{}, {})",
                    job.0,
                    node.0,
                    span.base,
                    span.base + span.nodes,
                );
            }
            _ => {}
        }
    }
}

/// The datasets both substrates serve: enough that the ring spreads them
/// over both shards, each bricked into exactly one shard-slice of chunks.
fn store_datasets() -> Vec<StoreDataset> {
    [Field::Shells, Field::Plume, Field::Shells, Field::Plume]
        .into_iter()
        .map(|field| StoreDataset {
            field,
            dims: [16, 16, 32],
            bricks: BRICKS,
        })
        .collect()
}

/// The serialized workload: every dataset twice (cold then warm), one job
/// in flight at a time.
fn workload() -> Vec<(u64, f32)> {
    vec![
        (0, 0.10),
        (1, 0.20),
        (2, 0.30),
        (3, 0.40),
        (0, 0.50),
        (1, 0.60),
        (2, 0.70),
        (3, 0.80),
    ]
}

/// Run the workload through the live sharded service, one frame at a time.
fn run_service(kind: SchedulerKind) -> Vec<TraceEvent> {
    let root = std::env::temp_dir().join(format!(
        "vizsched-shard-parity-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let mut store = ChunkStore::create(&root, &store_datasets()).unwrap();
    // Throttle the store so every measured load is comfortably nonzero
    // (see sim_service_parity.rs).
    store.set_throttle(Some(4 << 20));
    let probe = Arc::new(CollectingProbe::new());
    let config = ServiceConfig::default()
        .nodes(NODES)
        .shards(SHARDS)
        .mem_quota(MEM_QUOTA)
        .image_size(32, 32)
        .scheduler(kind)
        .probe(probe.clone());
    let service = VizService::start(config, Arc::new(store));
    let client = ServiceClient::new(UserId(0), service.request_sender());
    for (i, &(dataset, azimuth)) in workload().iter().enumerate() {
        let frame = FrameParams {
            azimuth,
            ..FrameParams::default()
        };
        let rx = client.render_interactive(ActionId(i as u64), DatasetId(dataset as u32), frame);
        rx.recv_timeout(Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("{}: frame {i} never arrived: {e}", kind.name()));
    }
    service.drain_and_shutdown();
    std::fs::remove_dir_all(root).ok();
    probe.take()
}

/// Replay the same workload in the sharded simulator over the *same
/// physical catalog*, jobs spaced far enough apart that each completes
/// before the next issues.
fn run_sim(kind: SchedulerKind) -> Vec<TraceEvent> {
    let root = std::env::temp_dir().join(format!(
        "vizsched-shard-parity-cat-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let store = ChunkStore::create(&root, &store_datasets()).unwrap();
    let catalog = store.catalog().clone();
    std::fs::remove_dir_all(root).ok();

    let cluster = ClusterSpec::homogeneous(NODES, MEM_QUOTA);
    let config = SimConfig::new(cluster, CostParams::default(), 1 << 30);
    let jobs: Vec<Job> = workload()
        .iter()
        .enumerate()
        .map(|(i, &(dataset, azimuth))| Job {
            id: JobId(i as u64),
            kind: JobKind::Interactive {
                user: UserId(0),
                action: ActionId(i as u64),
            },
            dataset: DatasetId(dataset as u32),
            issue_time: SimTime::from_secs(i as u64),
            frame: FrameParams {
                azimuth,
                ..FrameParams::default()
            },
        })
        .collect();
    let probe = Arc::new(CollectingProbe::new());
    let outcome = Simulation::new(config, Vec::new()).run_opts(
        jobs,
        RunOptions::new(kind)
            .label("shard-parity")
            .catalog(catalog)
            .shards(SHARDS)
            .probe(probe.clone()),
    );
    assert_eq!(
        outcome.incomplete_jobs,
        0,
        "{}: sim run stalled",
        kind.name()
    );
    assert_eq!(outcome.per_shard.len(), SHARDS, "{}", kind.name());
    probe.take()
}

/// Identical routing and identical global placement on both substrates.
fn assert_sharded_parity(kind: SchedulerKind) {
    let sim = run_sim(kind);
    let live = run_service(kind);
    let name = kind.name();

    let routed = shard_assignments(&sim);
    assert_eq!(
        routed,
        shard_assignments(&live),
        "{name}: shard routing diverged between substrates"
    );
    assert_eq!(
        routed.len(),
        workload().len(),
        "{name}: every offered job routes exactly once"
    );
    let used: std::collections::BTreeSet<u32> = routed.iter().map(|&(_, s)| s).collect();
    assert_eq!(
        used.len(),
        SHARDS,
        "{name}: the workload must exercise every shard, got {used:?}"
    );
    // The workload runs every dataset twice (jobs i and i + 4): both
    // visits must route to the same shard — `Cache[c]` locality.
    for i in 0..4 {
        assert_eq!(
            routed[i].1,
            routed[i + 4].1,
            "{name}: dataset {i} split across shards"
        );
    }

    assert_eq!(
        assignments(&sim),
        assignments(&live),
        "{name}: (shard, node) task placement diverged between substrates"
    );

    let map = ShardMap::new(NODES, SHARDS);
    assert_placements_respect_shards(&format!("{name}/sim"), &sim, &map);
    assert_placements_respect_shards(&format!("{name}/live"), &live, &map);
}

#[test]
fn ours_routes_and_places_identically_when_sharded() {
    assert_sharded_parity(SchedulerKind::Ours);
}

#[test]
fn fcfsl_routes_and_places_identically_when_sharded() {
    assert_sharded_parity(SchedulerKind::Fcfsl);
}

#[test]
fn mobj_routes_and_places_identically_when_sharded() {
    assert_sharded_parity(SchedulerKind::Mobj);
}

#[test]
fn frac_routes_and_places_identically_when_sharded() {
    assert_sharded_parity(SchedulerKind::Frac);
}

/// The scale target of the sharded design: 16 shard-local cycle loops
/// drive a 1024-node cluster through a mixed interactive/batch workload.
/// Sim-only — the point is the control plane at cluster scale, which no
/// thread-per-node live harness can reach in a test.
#[test]
fn sixteen_shards_drive_a_thousand_node_cluster() {
    let scenario = Scenario::sweep(
        "shard-scale",
        1024,
        2 << 30,
        64,
        1 << 30,
        32,
        vizsched_core::time::SimDuration::from_secs(2),
        8,
        42,
    );
    let config = SimConfig::new(scenario.cluster.clone(), scenario.cost, scenario.chunk_max);
    let probe = Arc::new(CollectingProbe::new());
    let jobs = scenario.jobs();
    let offered = jobs.len();
    assert!(offered > 500, "scale scenario must carry real load");
    let outcome = Simulation::new(config, scenario.datasets()).run_opts(
        jobs,
        RunOptions::new(SchedulerKind::Ours)
            .label(&scenario.label)
            .shards(16)
            .probe(probe.clone()),
    );
    assert_eq!(outcome.incomplete_jobs, 0, "scale run stalled");
    assert_eq!(outcome.per_shard.len(), 16);
    assert_eq!(
        outcome.per_shard.iter().map(|s| s.nodes).sum::<u32>(),
        1024,
        "the shard slices must tile the cluster"
    );
    // 64 dataset keys over 16 shards: the ring feeds most shards, but a
    // shard owning zero of only 64 keys is legitimate hash dispersion —
    // balance in expectation is the ring property test's job, not this
    // one's.
    let fed = outcome.per_shard.iter().filter(|s| s.assigned > 0).count();
    assert!(
        fed >= 12,
        "only {fed}/16 shards saw work: {:?}",
        outcome
            .per_shard
            .iter()
            .map(|s| s.assigned)
            .collect::<Vec<_>>()
    );
    assert!(
        outcome.per_shard.iter().map(|s| s.assigned).sum::<u64>() >= offered as u64,
        "routing must account for every offered job"
    );

    let events = probe.take();
    // Every placement stays inside the owning shard's span, migrations
    // included.
    let map = ShardMap::new(1024, 16);
    assert_placements_respect_shards("scale", &events, &map);
    // Interactive users stay pinned: only batch jobs ever migrate.
    let interactive: std::collections::BTreeSet<u64> = outcome
        .record
        .jobs
        .iter()
        .filter(|j| j.kind.is_interactive())
        .map(|j| j.id.0)
        .collect();
    for e in &events {
        if let TraceEvent::ShardMigrated { job, .. } = e {
            assert!(
                !interactive.contains(&job.0),
                "interactive J{} migrated off its shard",
                job.0
            );
        }
    }
}
