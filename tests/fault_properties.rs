//! Property-based chaos tests: random seedable [`FaultPlan`] schedules —
//! node crashes/respawns, slow-node degradations, correlated leaf
//! outages, shard-head crashes — over random clusters, shard counts, and
//! workloads, across all nine registry policies. Two invariants must
//! hold no matter what the plan throws at the control plane:
//!
//! 1. **No admitted job is ever lost.** Every job the head admits
//!    finishes (`incomplete_jobs == 0`); faults may reroute or delay
//!    work, never drop it.
//! 2. **Pinned interactive sessions never migrate.** Batch jobs may be
//!    stolen off a saturated or failed shard, but an interactive
//!    session's frames stay on the shard the router pinned them to —
//!    failover re-admits them (`shard_assigned`), it does not migrate
//!    them (`shard_migrated`).

use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use vizsched_core::prelude::*;
use vizsched_metrics::{CollectingProbe, TraceEvent};
use vizsched_sim::{FaultPlan, RunOptions, SimConfig, Simulation};

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

/// All nine registry policies: the six headline schedulers plus the
/// three extended-policy entries.
fn policy(pick: usize) -> SchedulerKind {
    *SchedulerKind::ALL
        .iter()
        .chain(SchedulerKind::EXTENDED.iter())
        .nth(pick)
        .expect("pick < 9")
}

#[derive(Clone, Debug)]
struct ChaosCase {
    nodes: usize,
    shards: usize,
    datasets: u32,
    jobs: Vec<(u32, bool, u64)>, // (dataset, interactive, issue_ms)
    kind_pick: usize,
    fault_seed: u64,
}

fn chaos_case() -> impl Strategy<Value = ChaosCase> {
    (
        2usize..10,
        0usize..4,
        1u32..4,
        prop::collection::vec((0u32..4, any::<bool>(), 0u64..6_000), 1..40),
        0usize..9,
        any::<u64>(),
    )
        .prop_map(
            |(nodes, shard_pick, datasets, mut jobs, kind_pick, fault_seed)| {
                for job in &mut jobs {
                    job.0 %= datasets;
                }
                jobs.sort_by_key(|j| j.2);
                ChaosCase {
                    nodes,
                    shards: (1 + shard_pick).min(nodes),
                    datasets,
                    jobs,
                    kind_pick,
                    fault_seed,
                }
            },
        )
}

fn build(case: &ChaosCase) -> (Simulation, Vec<Job>) {
    let cluster = ClusterSpec::homogeneous(case.nodes, 2 * GIB);
    let mut config = SimConfig::new(cluster, CostParams::default(), 512 * MIB);
    config.record_trace = true;
    let sim = Simulation::new(config, uniform_datasets(case.datasets, 2 * GIB));
    let jobs: Vec<Job> = case
        .jobs
        .iter()
        .enumerate()
        .map(|(i, &(dataset, interactive, ms))| Job {
            id: JobId(i as u64),
            kind: if interactive {
                JobKind::Interactive {
                    user: UserId((i % 3) as u32),
                    action: ActionId((i % 3) as u64),
                }
            } else {
                JobKind::Batch {
                    user: UserId(9),
                    request: BatchId(i as u64),
                    frame: 0,
                }
            },
            dataset: DatasetId(dataset),
            issue_time: SimTime::from_millis(ms),
            frame: FrameParams::default(),
        })
        .collect();
    (sim, jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random fault schedules never lose an admitted job and never
    /// migrate a pinned interactive session, for every registry policy.
    #[test]
    fn random_fault_plans_lose_nothing_and_pin_interactives(case in chaos_case()) {
        let kind = policy(case.kind_pick);
        let (sim, jobs) = build(&case);
        let plan = FaultPlan::random(
            case.fault_seed,
            case.nodes,
            case.shards,
            SimDuration::from_secs(10),
        );
        let interactive: HashSet<u64> = jobs
            .iter()
            .filter(|j| j.kind.is_interactive())
            .map(|j| j.id.0)
            .collect();
        let total = jobs.len();

        let probe = Arc::new(CollectingProbe::new());
        let outcome = sim.run_opts(
            jobs,
            RunOptions::new(kind)
                .label("fault-prop")
                .shards(case.shards)
                .fault_plan(plan.clone())
                .probe(probe.clone()),
        );

        // Invariant 1: zero admitted-job loss. Every admitted job
        // completes; the only jobs missing from the record are the ones
        // degraded mode *refused at admission* (shed batch work), never
        // silently dropped — and degraded mode protects interactive
        // sessions, so only batch jobs may be shed.
        prop_assert_eq!(
            outcome.incomplete_jobs, 0,
            "{} lost admitted jobs under plan {:?}", kind.name(), plan
        );
        let events = probe.take();
        let mut shed = 0usize;
        for event in &events {
            if let TraceEvent::Rejected { job, reason, .. } = event {
                shed += 1;
                prop_assert_eq!(
                    *reason, vizsched_metrics::RejectReason::Degraded,
                    "{}: only degraded-mode shedding may refuse jobs here", kind.name()
                );
                prop_assert!(
                    !interactive.contains(&job.0),
                    "{}: degraded mode shed interactive job {}", kind.name(), job.0
                );
            }
        }
        prop_assert_eq!(
            outcome.record.jobs.len() + shed, total,
            "{}: completed + shed must account for the full workload", kind.name()
        );

        // Invariant 2: pinned interactive sessions never migrate. Only
        // batch jobs may appear in `shard_migrated` events; interactive
        // re-admission after a shard failure uses `shard_assigned`.
        for event in &events {
            if let TraceEvent::ShardMigrated { job, from, to, .. } = event {
                prop_assert!(
                    !interactive.contains(&job.0),
                    "{}: interactive job {} migrated {:?} -> {:?}",
                    kind.name(), job.0, from, to
                );
            }
        }

        // Every scheduled fault the run reached is visible in the trace:
        // fault injection is observable, not silent.
        let injected = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::FaultInjected { .. }))
            .count();
        prop_assert!(
            injected <= plan.len(),
            "more fault_injected events ({injected}) than planned ({})",
            plan.len()
        );
    }
}
