//! The scenario record/replay plane, end to end: a run captured by the
//! [`RecordingProbe`] — simulated or live — must replay bit-identically
//! in the simulator after a round trip through the versioned JSONL
//! format. The live half reuses the `sim_service_parity` recipe: a
//! serialized client over a small physical store, with placement made
//! substrate-independent by bricking every dataset into exactly `NODES`
//! chunks (cold jobs spread one chunk per node, warm jobs map to their
//! unique cache holders).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use vizsched_core::data::{uniform_datasets, Catalog, DecompositionPolicy};
use vizsched_core::prelude::*;
use vizsched_metrics::{events_to_jsonl, CollectingProbe, TraceEvent};
use vizsched_service::{ChunkStore, ServiceClient, ServiceConfig, StoreDataset, VizService};
use vizsched_sim::{RunOptions, SimConfig, Simulation};
use vizsched_volume::Field;
use vizsched_workload::{
    CameraPathSpec, RecordHeader, RecordingProbe, Scenario, ScenarioRecord, TrafficShape,
};

const NODES: usize = 4;
const MEM_QUOTA: u64 = 1 << 20;
const CYCLE: SimDuration = SimDuration::from_millis(30);

// -------------------------------------------------------------------
// Substrate-independent placement keys (the sim_service_parity normal
// form): sorted, so dispatch interleaving across cycles doesn't matter.
// -------------------------------------------------------------------

type AssignKey = (u64, u32, u64, u32, bool);

fn assignments(events: &[TraceEvent]) -> Vec<AssignKey> {
    let mut keys: Vec<AssignKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Assignment {
                job,
                task,
                chunk,
                node,
                interactive,
                ..
            } => Some((job.0, *task, chunk.as_u64(), node.0, *interactive)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn dones(events: &[TraceEvent]) -> Vec<AssignKey> {
    let mut keys: Vec<AssignKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TaskDone {
                job,
                task,
                chunk,
                node,
                miss,
                ..
            } => Some((job.0, *task, chunk.as_u64(), node.0, *miss)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn cache_loads(events: &[TraceEvent]) -> BTreeSet<(u32, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::CacheLoad { node, chunk, .. } => Some((node.0, chunk.as_u64())),
            _ => None,
        })
        .collect()
}

fn job_done_order(events: &[TraceEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::JobDone { job, .. } => Some(job.0),
            _ => None,
        })
        .collect()
}

// -------------------------------------------------------------------
// Sim-record -> sim-replay: the strongest possible claim, bit-identical
// event streams.
// -------------------------------------------------------------------

fn small_catalog() -> Catalog {
    Catalog::new(
        uniform_datasets(4, 64 << 20),
        DecompositionPolicy::MaxChunkSize {
            max_bytes: 16 << 20,
        },
    )
}

fn small_sim() -> Simulation {
    let cluster = ClusterSpec::homogeneous(NODES, 128 << 20);
    let mut config = SimConfig::new(cluster, CostParams::default(), 16 << 20);
    config.cycle = CYCLE;
    Simulation::new(config, Vec::new())
}

/// A short locality-heavy stream (two users walking adjacent datasets).
fn small_shape() -> TrafficShape {
    TrafficShape::CameraPath(CameraPathSpec {
        groups: 1,
        users_per_group: 2,
        path_len: 2,
        dwell: SimDuration::from_secs(1),
        stagger: SimDuration::from_millis(100),
        period: SimDuration::from_millis(30),
        dataset_count: 4,
        seed: 9,
    })
}

fn small_header(policy: &str) -> RecordHeader {
    RecordHeader::new(
        "record-replay",
        9,
        policy,
        CYCLE,
        CostParams::default(),
        ClusterSpec::homogeneous(NODES, 128 << 20),
        &small_catalog(),
    )
}

/// Zero out `wall_us` in a serialized event stream: `CycleEnd` carries
/// the *measured* wall-clock cost of the scheduling pass (the one field
/// observed from the host clock); every other field is virtual time and
/// must reproduce exactly.
fn scrub_wall_clock(jsonl: &str) -> String {
    let mut out = String::new();
    for line in jsonl.lines() {
        if let Some(i) = line.find("\"wall_us\":") {
            let tail = &line[i + 10..];
            let digits = tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len());
            out.push_str(&line[..i + 10]);
            out.push('0');
            out.push_str(&tail[digits..]);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn sim_run_recorded_then_replayed_is_bit_identical() {
    let jobs = small_shape().generate();

    // Pass 1: run and record.
    let recorder = Arc::new(RecordingProbe::new(small_header("OURS")));
    let outcome = small_sim().run_opts(
        jobs.clone(),
        RunOptions::new(SchedulerKind::Ours)
            .label("record-replay")
            .catalog(small_catalog())
            .probe(recorder.clone()),
    );
    assert_eq!(outcome.incomplete_jobs, 0);
    let record = recorder.finish();
    assert_eq!(
        record.jobs(),
        &jobs[..],
        "recorder must capture the offered stream verbatim"
    );

    // Round trip the capture through the serialized format.
    let jsonl = record.to_jsonl();
    let parsed = ScenarioRecord::parse(&jsonl).expect("own serialization parses");
    assert_eq!(parsed, record);
    assert_eq!(parsed.to_jsonl(), jsonl, "serialization is canonical");

    // Pass 2: replay the parsed record in a fresh simulator.
    let scenario = Scenario::from_record(&parsed);
    let twin = Arc::new(CollectingProbe::new());
    let replay = small_sim().run_opts(
        scenario.jobs(),
        RunOptions::new(SchedulerKind::Ours)
            .label("record-replay")
            .catalog(scenario.catalog())
            .probe(twin.clone()),
    );
    assert_eq!(replay.incomplete_jobs, 0);
    assert_eq!(
        scrub_wall_clock(&events_to_jsonl(&twin.take())),
        scrub_wall_clock(&events_to_jsonl(&recorder.events())),
        "replayed event stream must be bit-identical to the recorded run \
         (modulo the measured wall-clock cost of each scheduling pass)"
    );
}

// -------------------------------------------------------------------
// Record on the live service -> replay in the sim.
// -------------------------------------------------------------------

/// The serialized live workload: `(dataset, azimuth)` per frame, one in
/// flight at a time. Dataset 0 runs cold then warm, dataset 1
/// interleaves — the parity harness's cache-coexistence pattern.
fn live_workload() -> Vec<(u32, f32)> {
    vec![
        (0, 0.10),
        (0, 0.20),
        (1, 0.30),
        (0, 0.40),
        (1, 0.50),
        (1, 0.60),
    ]
}

#[test]
fn live_recording_replays_in_sim_with_identical_placements() {
    let root = std::env::temp_dir().join(format!("vizsched-recrep-{}", std::process::id()));
    let mut store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Shells,
                dims: [16, 16, 32],
                bricks: NODES,
            },
            StoreDataset {
                field: Field::Plume,
                dims: [16, 16, 32],
                bricks: NODES,
            },
        ],
    )
    .unwrap();
    // Nonzero measured loads, as in the parity harness: a zero estimate
    // would erase the locality advantage deterministic placement needs.
    store.set_throttle(Some(4 << 20));
    let catalog = store.catalog().clone();

    let header = RecordHeader::new(
        "live-capture",
        0,
        "OURS",
        CYCLE,
        CostParams::default(),
        ClusterSpec::homogeneous(NODES, MEM_QUOTA),
        &catalog,
    );
    let recorder = Arc::new(RecordingProbe::new(header));
    let config = ServiceConfig::default()
        .nodes(NODES)
        .mem_quota(MEM_QUOTA)
        .image_size(32, 32)
        .scheduler(SchedulerKind::Ours)
        .probe(recorder.clone());
    let service = VizService::start(config, Arc::new(store));
    let client = ServiceClient::new(UserId(0), service.request_sender());
    for (i, &(dataset, azimuth)) in live_workload().iter().enumerate() {
        let frame = FrameParams {
            azimuth,
            ..FrameParams::default()
        };
        let rx = client.render_interactive(ActionId(i as u64), DatasetId(dataset), frame);
        rx.recv_timeout(Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("frame {i} never arrived: {e}"));
        // Space the recorded arrivals out beyond anything the simulated
        // executions can take (a couple of cycles plus virtual render
        // time), so the replay keeps the live run's one-job-in-flight
        // serialization and the placement argument carries over.
        std::thread::sleep(Duration::from_millis(200));
    }
    service.drain_and_shutdown();
    std::fs::remove_dir_all(root).ok();
    let live_events = recorder.events();
    let record = recorder.finish();
    assert_eq!(record.jobs().len(), live_workload().len());

    // Round trip through the on-disk format, exactly as an operator would.
    let jsonl = record.to_jsonl();
    let parsed = ScenarioRecord::parse(&jsonl).expect("live capture parses");
    assert_eq!(parsed, record);

    // Replay in the simulator over the recorded (physical) catalog.
    let scenario = Scenario::from_record(&parsed);
    let cluster = ClusterSpec::homogeneous(NODES, MEM_QUOTA);
    let mut config = SimConfig::new(cluster, CostParams::default(), 1 << 30);
    config.cycle = CYCLE;
    let twin = Arc::new(CollectingProbe::new());
    let outcome = Simulation::new(config, Vec::new()).run_opts(
        scenario.jobs(),
        RunOptions::new(SchedulerKind::Ours)
            .label("live-capture-replay")
            .catalog(scenario.catalog())
            .probe(twin.clone()),
    );
    assert_eq!(outcome.incomplete_jobs, 0, "replay stalled");
    let sim_events = twin.take();

    assert_eq!(
        assignments(&sim_events),
        assignments(&live_events),
        "replayed placement diverged from the recorded live run"
    );
    assert_eq!(
        dones(&sim_events),
        dones(&live_events),
        "replayed (node, miss) realization diverged"
    );
    assert_eq!(
        cache_loads(&sim_events),
        cache_loads(&live_events),
        "replayed per-node cache contents diverged"
    );
    assert_eq!(
        job_done_order(&sim_events),
        job_done_order(&live_events),
        "replayed job completion order diverged"
    );
}

// -------------------------------------------------------------------
// Generator determinism and replay failure modes.
// -------------------------------------------------------------------

#[test]
fn every_traffic_shape_records_byte_identically_per_seed() {
    for (a, b) in TrafficShape::demo_suite(2012)
        .into_iter()
        .zip(TrafficShape::demo_suite(2012))
    {
        let left = a.to_record(small_header("OURS")).to_jsonl();
        let right = b.to_record(small_header("OURS")).to_jsonl();
        assert_eq!(
            left,
            right,
            "{}: same seed must give identical bytes",
            a.name()
        );
        // And the bytes survive a parse round trip unchanged.
        let reparsed = ScenarioRecord::parse(&left).expect("shape record parses");
        assert_eq!(reparsed.to_jsonl(), left, "{}", a.name());
    }
}

#[test]
fn truncated_record_fails_with_the_cut_line_number() {
    let record = small_shape().to_record(small_header("OURS"));
    let jsonl = record.to_jsonl();
    // Cut mid-way through the byte stream: the parser must name the
    // (partial) line it died on instead of panicking.
    let cut = &jsonl[..jsonl.len() / 2];
    let err = ScenarioRecord::parse(cut).expect_err("truncated record must not parse");
    assert_eq!(err.line, cut.lines().count(), "error names the cut line");
    assert!(err.to_string().starts_with(&format!("line {}", err.line)));
}

#[test]
fn corrupt_fingerprint_is_rejected_with_line_one() {
    let jsonl = small_shape().to_record(small_header("OURS")).to_jsonl();
    // Flip the recorded seed without updating the fingerprint: the header
    // no longer matches the configuration it claims to pin.
    let corrupt = jsonl.replacen("\"seed\":9", "\"seed\":8", 1);
    assert_ne!(corrupt, jsonl);
    let err = ScenarioRecord::parse(&corrupt).expect_err("fingerprint mismatch must fail");
    assert_eq!(err.line, 1);
    assert!(
        err.to_string().contains("fingerprint"),
        "unexpected error: {err}"
    );
}

#[test]
fn garbage_and_empty_inputs_fail_gracefully() {
    for (input, want_line) in [
        ("", 1),
        ("not json at all", 1),
        ("{\"t\":\"session\"}", 1), // no header first
    ] {
        let err = ScenarioRecord::parse(input).expect_err("must not parse");
        assert_eq!(err.line, want_line, "input {input:?}");
    }
}
