//! Cross-crate pipeline consistency: distributed rendering (brick +
//! compositing) must agree with monolithic rendering of the same volume,
//! and the full simulator/service stack must agree on the basics.

use vizsched_compositing::{composite, CompositeAlgo};
use vizsched_render::raycast::{render_brick, render_parallel};
use vizsched_render::{Camera, RenderSettings, TransferFunction};
use vizsched_volume::{split_z, Field, Volume};

fn settings() -> RenderSettings {
    RenderSettings {
        width: 96,
        height: 96,
        step: 0.4,
        ..RenderSettings::default()
    }
}

/// Mean absolute per-channel difference between two images.
fn mean_diff(a: &vizsched_render::RgbaImage, b: &vizsched_render::RgbaImage) -> f64 {
    let mut total = 0.0f64;
    for (pa, pb) in a.pixels.iter().zip(&b.pixels) {
        for c in 0..4 {
            total += (pa[c] - pb[c]).abs() as f64;
        }
    }
    total / (a.pixels.len() * 4) as f64
}

#[test]
fn distributed_render_matches_monolithic() {
    // Sort-last decomposition correctness: ray casting each z-slab brick
    // and compositing by depth must reproduce the single-volume rendering
    // (up to sampling-offset differences at brick boundaries).
    let volume: Volume<f32> = Field::Supernova.sample([32, 32, 48]);
    let tf = TransferFunction::preset(0);
    let s = settings();
    for (azimuth, elevation) in [(0.0f32, 0.0f32), (0.7, 0.3), (2.5, -0.4), (4.0, 0.9)] {
        let camera = Camera::orbit(volume.dims, azimuth, elevation, 2.4);
        let monolithic = render_parallel(&volume, &camera, &tf, &s);
        for brick_count in [2usize, 3, 4] {
            let bricks = split_z(&volume, brick_count);
            let layers: Vec<_> = bricks
                .iter()
                .map(|b| render_brick(b, &camera, &tf, &s))
                .collect();
            let distributed = composite(layers, CompositeAlgo::Auto);
            let diff = mean_diff(&monolithic, &distributed);
            assert!(
                diff < 0.02,
                "{brick_count} bricks at az={azimuth} el={elevation}: mean diff {diff}"
            );
        }
    }
}

#[test]
fn brick_count_does_not_change_the_image_much() {
    let volume: Volume<f32> = Field::Plume.sample([24, 24, 48]);
    let tf = TransferFunction::preset(0);
    let s = settings();
    let camera = Camera::orbit(volume.dims, 1.2, 0.2, 2.4);
    let render_with = |count: usize| {
        let bricks = split_z(&volume, count);
        let layers: Vec<_> = bricks
            .iter()
            .map(|b| render_brick(b, &camera, &tf, &s))
            .collect();
        composite(layers, CompositeAlgo::Auto)
    };
    let two = render_with(2);
    let four = render_with(4);
    assert!(mean_diff(&two, &four) < 0.02);
}

#[test]
fn transfer_function_controls_what_is_visible() {
    // The iso-ridge preset (1) must produce a different image from the
    // density preset (0) over the same data and camera — i.e. the transfer
    // function actually participates in the pipeline.
    let volume: Volume<f32> = Field::Shells.sample([24, 24, 24]);
    let camera = Camera::orbit(volume.dims, 0.5, 0.3, 2.3);
    let s = settings();
    let a = render_parallel(&volume, &camera, &TransferFunction::preset(0), &s);
    let b = render_parallel(&volume, &camera, &TransferFunction::preset(1), &s);
    assert!(
        a.max_abs_diff(&b) > 0.05,
        "presets 0 and 1 rendered identically"
    );
}

#[test]
fn simulator_and_cost_model_agree_on_pipeline_ratios() {
    // The simulated stage costs must preserve the Fig. 2 ordering:
    // io >> render > composite at the paper's chunk sizes.
    use vizsched_core::cost::CostParams;
    // Group sizes as the clusters actually see them: 4 tasks per job on
    // the 8-node cluster (2 GB / 512 MB), 16 on the ANL cluster (8 GB).
    for (cost, group) in [
        (CostParams::eight_node_cluster(), 4u32),
        (CostParams::anl_gpu_cluster(), 16),
    ] {
        let bytes = 512u64 << 20;
        let io = cost.io_time(bytes);
        let render = cost.render_time(bytes);
        let comp = cost.composite_time(group);
        assert!(io > render * 50, "io {io} should dwarf render {render}");
        assert!(
            render > comp,
            "render {render} should exceed composite {comp}"
        );
    }
}

#[test]
fn empty_space_skipping_preserves_the_image_and_saves_samples() {
    use vizsched_render::raycast::{count_samples, render, render_with_skip};
    use vizsched_render::MinMaxGrid;

    // Supernova: a dense shell surrounded by lots of empty space.
    let volume: Volume<f32> = Field::Supernova.sample([48, 48, 48]);
    let tf = TransferFunction::preset(0);
    let s = RenderSettings {
        width: 64,
        height: 64,
        shading: false,
        ..settings()
    };
    let camera = Camera::orbit(volume.dims, 0.6, 0.25, 2.4);

    let plain = render(&volume, &camera, &tf, &s);
    let plain_samples = count_samples(&volume, &camera, &tf, &s);

    let grid = MinMaxGrid::build(&volume, 8);
    let (skipped, skip_samples) = render_with_skip(&volume, &camera, &tf, &s, &grid);

    // Same image (skip only jumps regions with zero classified opacity;
    // small differences come from sample-phase shifts after leaps).
    let diff = mean_diff(&plain, &skipped);
    assert!(diff < 0.01, "skipping changed the image: mean diff {diff}");
    // And substantially fewer samples.
    assert!(
        (skip_samples as f64) < plain_samples as f64 * 0.8,
        "skipping saved too little: {skip_samples} vs {plain_samples}"
    );
}
