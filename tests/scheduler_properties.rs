//! Property-based tests over all six scheduling policies: completeness
//! (every task assigned exactly once, eventually), validity (live nodes
//! only), and determinism.

use proptest::prelude::*;
use vizsched_core::cluster::ClusterSpec;
use vizsched_core::cost::CostParams;
use vizsched_core::data::{uniform_datasets, Catalog};
use vizsched_core::ids::{ActionId, BatchId, DatasetId, JobId, UserId};
use vizsched_core::job::{FrameParams, Job, JobKind};
use vizsched_core::sched::{Assignment, ScheduleCtx, SchedulerKind};
use vizsched_core::tables::HeadTables;
use vizsched_core::time::{SimDuration, SimTime};

const GIB: u64 = 1 << 30;

#[derive(Clone, Debug)]
struct JobSpec {
    dataset: u32,
    interactive: bool,
    user: u32,
}

fn job_specs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (0u32..4, any::<bool>(), 0u32..5).prop_map(|(dataset, interactive, user)| JobSpec {
            dataset,
            interactive,
            user,
        }),
        1..25,
    )
}

fn build_jobs(specs: &[JobSpec]) -> Vec<Job> {
    specs
        .iter()
        .enumerate()
        .map(|(i, s)| Job {
            id: JobId(i as u64),
            kind: if s.interactive {
                JobKind::Interactive {
                    user: UserId(s.user),
                    action: ActionId(s.user as u64),
                }
            } else {
                JobKind::Batch {
                    user: UserId(s.user),
                    request: BatchId(i as u64),
                    frame: 0,
                }
            },
            dataset: DatasetId(s.dataset),
            issue_time: SimTime::ZERO,
            frame: FrameParams::default(),
        })
        .collect()
}

/// Drive a scheduler to quiescence: invoke with the jobs, then keep
/// invoking with empty input (advancing time and freeing nodes) until
/// nothing is deferred.
fn drain(kind: SchedulerKind, nodes: usize, jobs: Vec<Job>) -> Vec<Assignment> {
    let cluster = ClusterSpec::homogeneous(nodes, 2 * GIB);
    let mut tables = HeadTables::new(&cluster);
    let mut sched = kind.build(SimDuration::from_millis(30));
    let catalog = Catalog::new(
        uniform_datasets(4, 2 * GIB),
        sched.decomposition(512 << 20, nodes as u32),
    );
    let cost = CostParams::default();

    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    {
        let mut ctx = ScheduleCtx {
            now,
            tables: &mut tables,
            catalog: &catalog,
            cost: &cost,
        };
        out.extend(sched.schedule(&mut ctx, jobs));
    }
    let mut rounds = 0;
    while sched.has_deferred() {
        rounds += 1;
        assert!(rounds < 10_000, "{} failed to drain", kind.name());
        now += SimDuration::from_secs(30);
        // All nodes idle again.
        for k in 0..nodes {
            tables
                .available
                .correct(vizsched_core::ids::NodeId(k as u32), now);
        }
        let mut ctx = ScheduleCtx {
            now,
            tables: &mut tables,
            catalog: &catalog,
            cost: &cost,
        };
        out.extend(sched.schedule(&mut ctx, Vec::new()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy eventually assigns every task of every job exactly
    /// once, and only to valid nodes.
    #[test]
    fn all_tasks_assigned_exactly_once(
        specs in job_specs(),
        nodes in 1usize..9,
        kind_pick in 0usize..9,
    ) {
        // The paper's six plus the post-paper family (FRAC/MOBJ/MOBJ-A).
        let kind = *SchedulerKind::ALL
            .iter()
            .chain(SchedulerKind::EXTENDED.iter())
            .nth(kind_pick)
            .unwrap();
        let jobs = build_jobs(&specs);
        let sched = kind.build(SimDuration::from_millis(30));
        let catalog = Catalog::new(
            uniform_datasets(4, 2 * GIB),
            sched.decomposition(512 << 20, nodes as u32),
        );
        drop(sched);
        let mut expected: Vec<(JobId, u32)> = jobs
            .iter()
            .flat_map(|j| (0..catalog.task_count(j.dataset)).map(move |t| (j.id, t)))
            .collect();
        let out = drain(kind, nodes, jobs);
        let mut got: Vec<(JobId, u32)> =
            out.iter().map(|a| (a.task.job, a.task.index)).collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(expected, got, "policy {}", kind.name());
        prop_assert!(out.iter().all(|a| a.node.index() < nodes));
    }

    /// Scheduling is deterministic: identical inputs, identical outputs.
    #[test]
    fn scheduling_is_deterministic(
        specs in job_specs(),
        nodes in 1usize..9,
        kind_pick in 0usize..9,
    ) {
        let kind = *SchedulerKind::ALL
            .iter()
            .chain(SchedulerKind::EXTENDED.iter())
            .nth(kind_pick)
            .unwrap();
        let a = drain(kind, nodes, build_jobs(&specs));
        let b = drain(kind, nodes, build_jobs(&specs));
        prop_assert_eq!(a, b);
    }

    /// Predicted start times never precede `now`, and the Available table
    /// is pushed by exactly the predicted execution.
    #[test]
    fn predictions_are_consistent(specs in job_specs(), nodes in 1usize..9) {
        let jobs = build_jobs(&specs);
        let cluster = ClusterSpec::homogeneous(nodes, 2 * GIB);
        let mut tables = HeadTables::new(&cluster);
        let mut sched = SchedulerKind::Ours.build(SimDuration::from_millis(30));
        let catalog = Catalog::new(
            uniform_datasets(4, 2 * GIB),
            sched.decomposition(512 << 20, nodes as u32),
        );
        let cost = CostParams::default();
        let now = SimTime::from_secs(5);
        let mut ctx = ScheduleCtx { now, tables: &mut tables, catalog: &catalog, cost: &cost };
        let out = sched.schedule(&mut ctx, jobs);
        for a in &out {
            prop_assert!(a.predicted_start >= now);
            prop_assert!(a.predicted_exec > SimDuration::ZERO);
        }
        // Each node's final Available equals the sum of its assignments'
        // predicted execs on top of `now` (nodes started idle).
        for k in 0..nodes {
            let node = vizsched_core::ids::NodeId(k as u32);
            let sum = out
                .iter()
                .filter(|a| a.node == node)
                .fold(SimDuration::ZERO, |acc, a| acc + a.predicted_exec);
            if sum > SimDuration::ZERO {
                prop_assert_eq!(tables.available.get(node), now + sum);
            } else {
                // Untouched nodes keep their initial availability.
                prop_assert_eq!(tables.available.get(node), SimTime::ZERO);
            }
        }
    }
}
