//! Tests of the §VII two-tier memory extension across the core scheduler
//! and the simulator.

use vizsched_core::prelude::*;
use vizsched_core::sched::{OursParams, OursScheduler};
use vizsched_sim::{RunOptions, SimConfig, Simulation};

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

fn interactive(id: u64, action: u64, dataset: u32, at: SimTime) -> Job {
    Job {
        id: JobId(id),
        kind: JobKind::Interactive {
            user: UserId(action as u32),
            action: ActionId(action),
        },
        dataset: DatasetId(dataset),
        issue_time: at,
        frame: FrameParams::default(),
    }
}

#[test]
fn upload_cost_appears_between_hit_and_miss() {
    // One node, GPU holds a single 512 MiB chunk, dataset has two chunks:
    // alternating requests to the two chunks force an upload per task while
    // never missing main memory after warmup.
    let cluster = ClusterSpec::homogeneous(1, 2 * GIB);
    let cost = CostParams::default();
    let mut config = SimConfig::new(cluster, cost, 512 * MIB);
    config.gpu_quota = Some(512 * MIB);
    let sim = Simulation::new(config, uniform_datasets(1, GIB)); // 2 chunks
    let jobs: Vec<Job> = (0..20)
        .map(|i| interactive(i, 0, 0, SimTime::from_millis(500 * i)))
        .collect();
    let outcome = sim.run_opts(jobs, RunOptions::new(SchedulerKind::Ours).label("upload"));
    assert_eq!(outcome.incomplete_jobs, 0);
    // 20 jobs x 2 tasks: 2 disk misses, everything else host hits needing
    // uploads — so GPU hits stay rare (the two tasks of a job alternate
    // through a one-chunk GPU tier).
    assert_eq!(outcome.record.cache_misses, 2);
    assert_eq!(outcome.record.cache_hits, 38);
    assert!(
        outcome.record.gpu_hits < 38,
        "a one-chunk GPU cannot serve both chunks: gpu_hits = {}",
        outcome.record.gpu_hits
    );
    // Warm job latency includes at least one upload (~167 ms at 3 GB/s),
    // far above the pure render time.
    let warm = &outcome.record.jobs[10];
    let latency = warm.timing.latency().unwrap();
    assert!(
        latency >= cost.upload_time(512 * MIB),
        "latency {latency} lacks the upload"
    );
}

#[test]
fn ample_vram_behaves_like_the_base_model() {
    let cluster = ClusterSpec::homogeneous(2, 2 * GIB);
    let cost = CostParams::default();
    // Jobs spaced far apart: every job after the first runs fully warm with
    // no queueing, so the models must agree exactly.
    let jobs: Vec<Job> = (0..10)
        .map(|i| interactive(i, 0, 0, SimTime::from_secs(10 * i)))
        .collect();

    // GPU as large as the host tier: after first touch everything is
    // GPU-resident.
    let mut with_gpu = SimConfig::new(cluster.clone(), cost, 512 * MIB);
    with_gpu.gpu_quota = Some(2 * GIB);
    let a = Simulation::new(with_gpu, uniform_datasets(1, 2 * GIB)).run_opts(
        jobs.clone(),
        RunOptions::new(SchedulerKind::Ours).label("gpu"),
    );

    let without = SimConfig::new(cluster, cost, 512 * MIB);
    let b = Simulation::new(without, uniform_datasets(1, 2 * GIB))
        .run_opts(jobs, RunOptions::new(SchedulerKind::Ours).label("base"));

    assert_eq!(a.record.cache_misses, b.record.cache_misses);
    // Warm-task GPU hits: every hit is GPU-resident when VRAM is ample.
    assert_eq!(a.record.gpu_hits, a.record.cache_hits);
    // Steady-state job latencies agree once data is resident (uploads only
    // on first touch).
    let last_a = a.record.jobs.last().unwrap().timing.latency().unwrap();
    let last_b = b.record.jobs.last().unwrap().timing.latency().unwrap();
    assert_eq!(
        last_a, last_b,
        "ample VRAM must match the base model when warm"
    );
}

#[test]
fn gpu_aware_scheduler_prefers_gpu_resident_replicas() {
    // Chunk cached on both nodes' hosts, but GPU-resident only on node 1.
    let cluster = ClusterSpec::homogeneous(2, 2 * GIB);
    let mut tables = HeadTables::with_gpu_tier(&cluster, GIB, EvictionPolicy::Lru);
    let catalog = Catalog::new(
        uniform_datasets(1, GIB),
        DecompositionPolicy::MaxChunkSize {
            max_bytes: 512 * MIB,
        },
    );
    let cost = CostParams::default();
    let chunk = ChunkId::new(DatasetId(0), 0);
    tables.cache.record_load(NodeId(0), chunk, 512 * MIB);
    tables.cache.record_load(NodeId(1), chunk, 512 * MIB);
    tables
        .gpu_cache
        .as_mut()
        .unwrap()
        .record_load(NodeId(1), chunk, 512 * MIB);

    let ctx = ScheduleCtx {
        now: SimTime::ZERO,
        tables: &mut tables,
        catalog: &catalog,
        cost: &cost,
    };
    // Host-level locality sees a tie and picks node 0; GPU-aware locality
    // must pick node 1, dodging the upload.
    assert_eq!(ctx.earliest_node_with_locality(chunk, 512 * MIB), NodeId(0));
    assert_eq!(
        ctx.earliest_node_with_gpu_locality(chunk, 512 * MIB),
        NodeId(1)
    );
    assert_eq!(
        ctx.movement_estimate(NodeId(1), chunk, 512 * MIB),
        SimDuration::ZERO
    );
    assert_eq!(
        ctx.movement_estimate(NodeId(0), chunk, 512 * MIB),
        cost.upload_time(512 * MIB)
    );
}

#[test]
fn gpu_aware_ours_runs_end_to_end() {
    let cluster = ClusterSpec::homogeneous(4, 2 * GIB);
    let cost = CostParams::default();
    let mut config = SimConfig::new(cluster, cost, 512 * MIB);
    // Three chunks of video memory per node: exactly the per-node working
    // set (one chunk of each dataset), so steady state is GPU-resident.
    config.gpu_quota = Some(1536 * MIB);
    config.warm_start = true;
    let sim = Simulation::new(config, uniform_datasets(3, 2 * GIB));
    let jobs: Vec<Job> = (0..120)
        .map(|i| interactive(i, i % 3, (i % 3) as u32, SimTime::from_millis(30 * i)))
        .collect();
    let sched = Box::new(OursScheduler::new(OursParams {
        gpu_aware: true,
        ..OursParams::default()
    }));
    let outcome = sim.run_opts(jobs, RunOptions::with_scheduler(sched).label("gpu-aware"));
    assert_eq!(outcome.incomplete_jobs, 0);
    assert!(
        outcome.record.gpu_hits > 0,
        "steady actions should hit the GPU tier"
    );
}
