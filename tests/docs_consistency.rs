//! Docs-vs-code consistency: the DESIGN.md trace-schema table must cover
//! every `TraceEvent` variant, the README's policy table must stay in
//! sync with `SchedulerKind`, docs/SCENARIO_FORMAT.md must cover every
//! record line kind, docs/OPERATORS_GUIDE.md must name every traffic
//! shape, and the top-level markdown documents (including the guides in
//! docs/) must not carry dead intra-repo links. Run by the CI docs job.

use std::path::{Path, PathBuf};
use vizsched_metrics::TraceEvent;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(name: &str) -> String {
    let path = repo_root().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Every serialized event tag must appear in DESIGN.md — the probe schema
/// table is documented as complete, so adding a `TraceEvent` variant
/// without documenting it fails here.
#[test]
fn design_md_documents_every_trace_event_variant() {
    let design = read("DESIGN.md");
    let missing: Vec<&str> = TraceEvent::TAGS
        .iter()
        .copied()
        .filter(|tag| !design.contains(&format!("`{tag}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "DESIGN.md probe schema is missing trace event tags: {missing:?}"
    );
}

/// The body of one `## N.`-numbered DESIGN.md section: from its heading
/// to the next `## ` heading (or end of file).
fn design_section(design: &str, number: u32) -> &str {
    let heading = format!("## {number}");
    let start = design
        .find(&heading)
        .unwrap_or_else(|| panic!("DESIGN.md has no section '{heading}'"));
    let body = &design[start..];
    match body[heading.len()..].find("\n## ") {
        Some(end) => &body[..heading.len() + end],
        None => body,
    }
}

/// Stricter than the whole-document check above: every tag must appear in
/// the §8 *schema table itself* — a row of the `| variant | tag | ... |`
/// table — so a new variant can't satisfy the docs test by being
/// name-dropped in prose elsewhere.
#[test]
fn design_md_schema_table_has_a_row_per_trace_event() {
    let design = read("DESIGN.md");
    let section = design_section(&design, 8);
    let rows: Vec<&str> = section
        .lines()
        .filter(|l| l.trim_start().starts_with('|'))
        .collect();
    let missing: Vec<&str> = TraceEvent::TAGS
        .iter()
        .copied()
        .filter(|tag| {
            let cell = format!("`{tag}`");
            !rows.iter().any(|row| row.contains(&cell))
        })
        .collect();
    assert!(
        missing.is_empty(),
        "DESIGN.md section 8 schema table is missing rows for: {missing:?}"
    );
    // The worked JSONL example block must also show each tag once.
    let missing_examples: Vec<&str> = TraceEvent::TAGS
        .iter()
        .copied()
        .filter(|tag| !section.contains(&format!("{{\"t\":\"{tag}\"")))
        .collect();
    assert!(
        missing_examples.is_empty(),
        "DESIGN.md section 8 worked-example block is missing lines for: {missing_examples:?}"
    );
}

/// Every policy name in the README's "Scheduling policies" table must
/// parse via `SchedulerKind::from_str` — the table is the user-facing
/// registry, so a renamed or removed variant orphans it loudly. The
/// reverse also holds: every buildable kind must have a row.
#[test]
fn readme_policy_table_names_parse() {
    use vizsched_core::sched::SchedulerKind;

    let readme = read("README.md");
    let start = readme
        .find("| Policy | Trigger | Rule |")
        .expect("README has the scheduling-policies table header");
    // Rows: consecutive `| `-prefixed lines after the header separator.
    let names: Vec<&str> = readme[start..]
        .lines()
        .skip(2)
        .take_while(|l| l.starts_with('|'))
        .map(|row| {
            row.trim_start_matches('|')
                .split('|')
                .next()
                .expect("row has a first cell")
                .trim()
                .trim_matches('`')
        })
        .collect();
    assert!(
        names.len() >= 9,
        "README policy table looks truncated: {names:?}"
    );
    for name in &names {
        assert!(
            name.parse::<SchedulerKind>().is_ok(),
            "README policy table row `{name}` does not parse as a SchedulerKind"
        );
    }
    for kind in SchedulerKind::ALL
        .iter()
        .chain(SchedulerKind::EXTENDED.iter())
    {
        assert!(
            names.contains(&kind.name()),
            "SchedulerKind::{kind:?} ({}) has no row in the README policy table",
            kind.name()
        );
    }
}

/// The policy-family trace tags are part of the documented schema; pin
/// them so a rename breaks the docs tests, not just downstream parsers.
#[test]
fn policy_trace_tags_are_pinned() {
    for tag in ["weights_updated", "share_adjusted"] {
        assert!(
            TraceEvent::TAGS.contains(&tag),
            "TraceEvent::TAGS lost the `{tag}` tag the docs promise"
        );
    }
}

/// The overload-policy section must name every policy knob and every
/// admission counter, so renaming a field orphans the docs loudly.
#[test]
fn design_md_documents_the_overload_policy_surface() {
    let design = read("DESIGN.md");
    for name in [
        "max_in_flight",
        "max_per_user",
        "deadline",
        "coalesce_interactive",
        "batch_escalation_age",
        "admitted",
        "rejected",
        "coalesced",
        "expired",
        "escalated",
    ] {
        assert!(
            design.contains(&format!("`{name}`")),
            "DESIGN.md overload section does not mention `{name}`"
        );
    }
}

/// Markdown links of the form `[text](target)` in `body`, excluding
/// images and code fences.
fn markdown_links(body: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for line in body.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while let Some(open) = line[i..].find("](") {
            let start = i + open + 2;
            // Reject escaped/image links conservatively: `![alt](...)`
            // is still a file reference worth checking, so keep it.
            if let Some(close) = line[start..].find(')') {
                links.push(line[start..start + close].to_string());
                i = start + close + 1;
            } else {
                break;
            }
            if i >= bytes.len() {
                break;
            }
        }
    }
    links
}

/// Intra-repo links in the top-level documents must resolve to files that
/// exist; external links and pure fragments are out of scope (offline CI).
/// Links are resolved relative to the document's own directory, the way
/// a markdown renderer resolves them (`../DESIGN.md` from docs/).
#[test]
fn top_level_docs_have_no_dead_intra_repo_links() {
    let root = repo_root();
    let mut dead = Vec::new();
    for doc in [
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "ROADMAP.md",
        "docs/POLICY_GUIDE.md",
        "docs/OPERATORS_GUIDE.md",
        "docs/SCENARIO_FORMAT.md",
        "docs/ARCHITECTURE.md",
    ] {
        let base = root.join(Path::new(doc).parent().expect("doc has a parent"));
        for link in markdown_links(&read(doc)) {
            let target = link.split_whitespace().next().unwrap_or("");
            if target.is_empty()
                || target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
            {
                continue;
            }
            let path = target.split('#').next().unwrap_or(target);
            if !base.join(path).exists() {
                dead.push(format!("{doc}: ({link})"));
            }
        }
    }
    assert!(dead.is_empty(), "dead intra-repo links: {dead:?}");
}

/// docs/SCENARIO_FORMAT.md is documented as complete: every record line
/// kind must keep both a `kind` row in the line-kinds table and a worked
/// `{"t":"kind"...}` example line, so adding a kind to `RECORD_KINDS`
/// without specifying it fails here.
#[test]
fn scenario_format_documents_every_record_kind() {
    use vizsched_workload::{RECORD_KINDS, RECORD_VERSION};

    let spec = read("docs/SCENARIO_FORMAT.md");
    let rows: Vec<&str> = spec
        .lines()
        .filter(|l| l.trim_start().starts_with('|'))
        .collect();
    for kind in RECORD_KINDS {
        let cell = format!("`{kind}`");
        assert!(
            rows.iter().any(|row| row.contains(&cell)),
            "docs/SCENARIO_FORMAT.md has no table row for record kind `{kind}`"
        );
        assert!(
            spec.contains(&format!("{{\"t\":\"{kind}\"")),
            "docs/SCENARIO_FORMAT.md has no worked example line for record kind `{kind}`"
        );
    }
    // The spec names the version it documents.
    assert!(
        spec.contains(&format!("`RECORD_VERSION = {RECORD_VERSION}`")),
        "docs/SCENARIO_FORMAT.md does not pin RECORD_VERSION = {RECORD_VERSION}"
    );
}

/// The operator's guide documents the traffic-shape catalogue as
/// complete: every `TrafficShape` name must appear (in backticks), so a
/// new generator can't ship undocumented.
#[test]
fn operators_guide_names_every_traffic_shape() {
    use vizsched_workload::TrafficShape;

    let guide = read("docs/OPERATORS_GUIDE.md");
    for name in TrafficShape::NAMES {
        assert!(
            guide.contains(&format!("`{name}`")),
            "docs/OPERATORS_GUIDE.md does not name traffic shape `{name}`"
        );
    }
}

/// The README is the entry point; it must link every guide under docs/.
#[test]
fn readme_links_the_guides() {
    let readme = read("README.md");
    for guide in [
        "docs/POLICY_GUIDE.md",
        "docs/OPERATORS_GUIDE.md",
        "docs/SCENARIO_FORMAT.md",
        "docs/ARCHITECTURE.md",
    ] {
        assert!(readme.contains(guide), "README.md does not link {guide}");
    }
}
