//! Property-based tests of the discrete-event engine: conservation and
//! ordering invariants over randomized workloads, schedulers, cluster
//! shapes, and fault injections.

use proptest::prelude::*;
use vizsched_core::prelude::*;
use vizsched_sim::{Fault, RunOptions, SimConfig, Simulation};

const GIB: u64 = 1 << 30;
const MIB: u64 = 1 << 20;

#[derive(Clone, Debug)]
struct WorkloadCase {
    nodes: usize,
    datasets: u32,
    jobs: Vec<(u32, bool, u64)>, // (dataset, interactive, issue_ms)
    kind_pick: usize,
    warm: bool,
    jitter: bool,
}

fn workload_case() -> impl Strategy<Value = WorkloadCase> {
    (
        1usize..6,
        1u32..4,
        prop::collection::vec((0u32..4, any::<bool>(), 0u64..2_000), 1..40),
        0usize..6,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(nodes, datasets, mut jobs, kind_pick, warm, jitter)| {
            for job in &mut jobs {
                job.0 %= datasets;
            }
            jobs.sort_by_key(|j| j.2);
            WorkloadCase {
                nodes,
                datasets,
                jobs,
                kind_pick,
                warm,
                jitter,
            }
        })
}

fn build(case: &WorkloadCase) -> (Simulation, Vec<Job>) {
    let cluster = ClusterSpec::homogeneous(case.nodes, 2 * GIB);
    let mut config = SimConfig::new(cluster, CostParams::default(), 512 * MIB);
    config.warm_start = case.warm;
    config.exec_jitter = if case.jitter { 0.05 } else { 0.0 };
    config.record_trace = true;
    let sim = Simulation::new(config, uniform_datasets(case.datasets, 2 * GIB));
    let jobs: Vec<Job> = case
        .jobs
        .iter()
        .enumerate()
        .map(|(i, &(dataset, interactive, ms))| Job {
            id: JobId(i as u64),
            kind: if interactive {
                JobKind::Interactive {
                    user: UserId((i % 3) as u32),
                    action: ActionId((i % 3) as u64),
                }
            } else {
                JobKind::Batch {
                    user: UserId(9),
                    request: BatchId(i as u64),
                    frame: 0,
                }
            },
            dataset: DatasetId(dataset),
            issue_time: SimTime::from_millis(ms),
            frame: FrameParams::default(),
        })
        .collect();
    (sim, jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every job completes; executed tasks equal decomposed
    /// tasks; hits + misses account for every execution.
    #[test]
    fn tasks_and_jobs_are_conserved(case in workload_case()) {
        let kind = SchedulerKind::ALL[case.kind_pick];
        let (sim, jobs) = build(&case);
        let total_jobs = jobs.len();
        let outcome = sim.run_opts(jobs, RunOptions::new(kind).label("prop"));
        prop_assert_eq!(outcome.incomplete_jobs, 0, "{}", kind.name());
        prop_assert_eq!(outcome.record.jobs.len(), total_jobs);
        let decomposed: u64 = outcome.record.jobs.iter().map(|j| u64::from(j.tasks)).sum();
        prop_assert_eq!(outcome.record.cache_hits + outcome.record.cache_misses, decomposed);
        prop_assert_eq!(outcome.trace.len() as u64, decomposed);
    }

    /// Ordering: JS ≥ JI, JF ≥ JS, latency ≥ execution, makespan = max JF.
    #[test]
    fn timing_invariants_hold(case in workload_case()) {
        let kind = SchedulerKind::ALL[case.kind_pick];
        let (sim, jobs) = build(&case);
        let outcome = sim.run_opts(jobs, RunOptions::new(kind).label("prop"));
        let mut max_finish = SimTime::ZERO;
        for job in &outcome.record.jobs {
            let start = job.timing.start.expect("all jobs started");
            let finish = job.timing.finish.expect("all jobs finished");
            prop_assert!(start >= job.timing.issue);
            prop_assert!(finish >= start);
            prop_assert!(job.timing.latency().unwrap() >= job.timing.execution().unwrap());
            prop_assert!(job.misses <= job.tasks);
            max_finish = max_finish.max(finish);
        }
        prop_assert_eq!(outcome.record.makespan, max_finish);
    }

    /// The trace never shows a node running two tasks at once.
    #[test]
    fn nodes_never_overlap(case in workload_case()) {
        let kind = SchedulerKind::ALL[case.kind_pick];
        let (sim, jobs) = build(&case);
        let outcome = sim.run_opts(jobs, RunOptions::new(kind).label("prop"));
        let mut per_node: std::collections::HashMap<u32, Vec<(SimTime, SimTime)>> =
            std::collections::HashMap::new();
        for t in &outcome.trace {
            per_node.entry(t.node.0).or_default().push((t.start, t.finish));
        }
        for (node, mut spans) in per_node {
            spans.sort();
            for w in spans.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0,
                    "node {node} overlaps: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    /// A crash plus recovery still conserves jobs (with at least 2 nodes so
    /// the survivors can absorb the re-placed work).
    #[test]
    fn faults_do_not_lose_jobs(case in workload_case(), crash_ms in 1u64..3_000) {
        prop_assume!(case.nodes >= 2);
        let kind = SchedulerKind::ALL[case.kind_pick];
        let (sim0, jobs) = build(&case);
        let mut config = sim0.config().clone();
        config.faults = vec![
            Fault { time: SimTime::from_millis(crash_ms), node: NodeId(0), crash: true },
            Fault { time: SimTime::from_millis(crash_ms + 30_000), node: NodeId(0), crash: false },
        ];
        let sim = Simulation::new(config, uniform_datasets(case.datasets, 2 * GIB));
        let total = jobs.len();
        let outcome = sim.run_opts(jobs, RunOptions::new(kind).label("fault"));
        prop_assert_eq!(outcome.incomplete_jobs, 0, "{}", kind.name());
        prop_assert_eq!(outcome.record.jobs.len(), total);
    }
}
