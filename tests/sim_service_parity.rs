//! Simulator-vs-service parity: both drive the *same* shared head-node
//! runtime (`vizsched-runtime`), so an identical serialized workload over
//! an identical catalog must produce identical scheduler-visible event
//! sequences — modulo wall-clock timestamps and measured durations, which
//! the live service observes from real disks and renders.
//!
//! The topology is chosen to make placement substrate-independent for the
//! deterministic policies: each dataset bricks into exactly `nodes`
//! chunks, so a cold job spreads one chunk per node through index
//! tie-breaks and a warm job maps every chunk to its unique cache holder
//! (zero movement strictly wins), never comparing measured estimate
//! *magnitudes* — the one quantity that legitimately differs between the
//! virtual and the wall clock.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use vizsched_core::prelude::*;
use vizsched_metrics::{CollectingProbe, RejectReason, TraceEvent};
use vizsched_service::{
    ChunkStore, OverloadPolicy, RenderOutcome, RenderReply, ServiceClient, ServiceConfig,
    StoreDataset, VizService,
};
use vizsched_sim::{RunOptions, SimConfig, Simulation};
use vizsched_volume::Field;

const NODES: usize = 4;
const MEM_QUOTA: u64 = 1 << 20;

/// (job, task, chunk, node, interactive) — sorted, so dispatch interleaving
/// across cycles doesn't matter, only the placements themselves.
type AssignKey = (u64, u32, u64, u32, bool);
/// (job, task, chunk, node, miss).
type DoneKey = (u64, u32, u64, u32, bool);

fn assignments(events: &[TraceEvent]) -> Vec<AssignKey> {
    let mut keys: Vec<AssignKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Assignment {
                job,
                task,
                chunk,
                node,
                interactive,
                ..
            } => Some((job.0, *task, chunk.as_u64(), node.0, *interactive)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn dones(events: &[TraceEvent]) -> Vec<DoneKey> {
    let mut keys: Vec<DoneKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TaskDone {
                job,
                task,
                chunk,
                node,
                miss,
                ..
            } => Some((job.0, *task, chunk.as_u64(), node.0, *miss)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn cache_loads(events: &[TraceEvent]) -> BTreeSet<(u32, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::CacheLoad { node, chunk, .. } => Some((node.0, chunk.as_u64())),
            _ => None,
        })
        .collect()
}

fn estimate_chunks(events: &[TraceEvent]) -> BTreeSet<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::EstimateCorrection { chunk, .. } => Some(chunk.as_u64()),
            _ => None,
        })
        .collect()
}

fn job_done_order(events: &[TraceEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::JobDone { job, .. } => Some(job.0),
            _ => None,
        })
        .collect()
}

fn count(events: &[TraceEvent], f: impl Fn(&TraceEvent) -> bool) -> usize {
    events.iter().filter(|e| f(e)).count()
}

/// The serialized workload both substrates replay: `(dataset, azimuth)`
/// per job, one job in flight at a time. Dataset 0 runs cold then warm,
/// dataset 1 interleaves to exercise per-node cache coexistence.
fn workload() -> Vec<(u64, f32)> {
    vec![
        (0, 0.10),
        (0, 0.20),
        (1, 0.30),
        (0, 0.40),
        (1, 0.50),
        (1, 0.60),
    ]
}

/// Run the workload through the live service, one frame at a time.
fn run_service(kind: SchedulerKind) -> (Vec<TraceEvent>, u64, u64) {
    let root = std::env::temp_dir().join(format!(
        "vizsched-parity-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let mut store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Shells,
                dims: [16, 16, 32],
                bricks: NODES,
            },
            StoreDataset {
                field: Field::Plume,
                dims: [16, 16, 32],
                bricks: NODES,
            },
        ],
    )
    .unwrap();
    // Throttle the store so every measured load is comfortably nonzero:
    // a zero measured estimate would erase the locality advantage the
    // deterministic placement argument rests on.
    store.set_throttle(Some(4 << 20));
    let probe = Arc::new(CollectingProbe::new());
    let config = ServiceConfig::default()
        .nodes(NODES)
        .mem_quota(MEM_QUOTA)
        .image_size(32, 32)
        .scheduler(kind)
        .probe(probe.clone());
    let service = VizService::start(config, Arc::new(store));
    let client = ServiceClient::new(UserId(0), service.request_sender());
    for (i, &(dataset, azimuth)) in workload().iter().enumerate() {
        let frame = FrameParams {
            azimuth,
            ..FrameParams::default()
        };
        let rx = client.render_interactive(ActionId(i as u64), DatasetId(dataset as u32), frame);
        rx.recv_timeout(Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("{}: frame {i} never arrived: {e}", kind.name()));
    }
    let stats = service.drain_and_shutdown();
    std::fs::remove_dir_all(root).ok();
    (probe.take(), stats.cache_hits, stats.cache_misses)
}

/// Replay the same workload in the simulator over the *same physical
/// catalog* (the store's bricking), jobs spaced far enough apart that each
/// completes before the next issues — the virtual-clock image of the
/// serialized client.
fn run_sim(kind: SchedulerKind) -> (Vec<TraceEvent>, u64, u64) {
    let root = std::env::temp_dir().join(format!(
        "vizsched-parity-cat-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Shells,
                dims: [16, 16, 32],
                bricks: NODES,
            },
            StoreDataset {
                field: Field::Plume,
                dims: [16, 16, 32],
                bricks: NODES,
            },
        ],
    )
    .unwrap();
    let catalog = store.catalog().clone();
    std::fs::remove_dir_all(root).ok();

    let cluster = ClusterSpec::homogeneous(NODES, MEM_QUOTA);
    let config = SimConfig::new(cluster, CostParams::default(), 1 << 30);
    let jobs: Vec<Job> = workload()
        .iter()
        .enumerate()
        .map(|(i, &(dataset, azimuth))| Job {
            id: JobId(i as u64),
            kind: JobKind::Interactive {
                user: UserId(0),
                action: ActionId(i as u64),
            },
            dataset: DatasetId(dataset as u32),
            issue_time: SimTime::from_secs(i as u64),
            frame: FrameParams {
                azimuth,
                ..FrameParams::default()
            },
        })
        .collect();
    let probe = Arc::new(CollectingProbe::new());
    let outcome = Simulation::new(config, Vec::new()).run_opts(
        jobs,
        RunOptions::new(kind)
            .label("parity")
            .catalog(catalog)
            .probe(probe.clone()),
    );
    assert_eq!(
        outcome.incomplete_jobs,
        0,
        "{}: sim run stalled",
        kind.name()
    );
    (
        probe.take(),
        outcome.record.cache_hits,
        outcome.record.cache_misses,
    )
}

/// Invariants that must hold for *any* policy, placement-deterministic or
/// not: same work items, same completion order, same invocation balance.
fn assert_weak_parity(kind: SchedulerKind, sim: &[TraceEvent], live: &[TraceEvent]) {
    let name = kind.name();
    let strip_node = |keys: Vec<AssignKey>| -> Vec<(u64, u32, u64, bool)> {
        let mut k: Vec<_> = keys
            .into_iter()
            .map(|(j, t, c, _, i)| (j, t, c, i))
            .collect();
        k.sort_unstable();
        k
    };
    assert_eq!(
        strip_node(assignments(sim)),
        strip_node(assignments(live)),
        "{name}: dispatched work items differ"
    );
    let strip_done = |keys: Vec<DoneKey>| -> Vec<(u64, u32, u64)> {
        let mut k: Vec<_> = keys.into_iter().map(|(j, t, c, _, _)| (j, t, c)).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(
        strip_done(dones(sim)),
        strip_done(dones(live)),
        "{name}: completed work items differ"
    );
    assert_eq!(
        job_done_order(sim),
        job_done_order(live),
        "{name}: job completion order differs"
    );
    for (tag, events) in [("sim", sim), ("live", live)] {
        let starts = count(events, |e| matches!(e, TraceEvent::CycleStart { .. }));
        let ends = count(events, |e| matches!(e, TraceEvent::CycleEnd { .. }));
        assert_eq!(starts, ends, "{name}/{tag}: unbalanced cycles");
        assert!(
            events.windows(2).all(|w| w[0].time() <= w[1].time()),
            "{name}/{tag}: probe stream not time-ordered"
        );
    }
}

/// Full placement parity, for policies whose tie-breaks are substrate
/// independent (index order / locality, never the wall clock): identical
/// node choices, identical per-node cache evolution, identical hit/miss
/// realization.
fn assert_strict_parity(kind: SchedulerKind) {
    let (sim, sim_hits, sim_misses) = run_sim(kind);
    let (live, live_hits, live_misses) = run_service(kind);
    let name = kind.name();
    assert_weak_parity(kind, &sim, &live);
    assert_eq!(
        assignments(&sim),
        assignments(&live),
        "{name}: task placement diverged between substrates"
    );
    assert_eq!(
        dones(&sim),
        dones(&live),
        "{name}: execution (node, miss) realization diverged"
    );
    assert_eq!(
        cache_loads(&sim),
        cache_loads(&live),
        "{name}: per-node cache contents diverged"
    );
    assert_eq!(
        estimate_chunks(&sim),
        estimate_chunks(&live),
        "{name}: estimate-corrected chunk sets differ"
    );
    assert_eq!(
        (sim_hits, sim_misses),
        (live_hits, live_misses),
        "{name}: aggregate hit/miss counters differ"
    );
}

#[test]
fn ours_places_identically_on_both_substrates() {
    assert_strict_parity(SchedulerKind::Ours);
}

#[test]
fn fcfsl_places_identically_on_both_substrates() {
    assert_strict_parity(SchedulerKind::Fcfsl);
}

#[test]
fn frac_places_identically_on_both_substrates() {
    // FRAC's interactive pass is OURS verbatim and its share EMA depends
    // only on the committed interactive stream, so placement is fully
    // substrate independent.
    assert_strict_parity(SchedulerKind::Frac);
}

#[test]
fn mobj_places_identically_on_both_substrates() {
    // MOBJ's objective terms (move, wait, fragmentation, starvation age)
    // are all derived from the shared head tables — no wall clock, no
    // substrate-visible tie-breaks.
    assert_strict_parity(SchedulerKind::Mobj);
}

#[test]
fn mobj_adaptive_places_identically_on_both_substrates() {
    // The serialized workload finishes well under retune_every
    // completions, so MOBJ-A never retunes here; this pins down that the
    // feedback plumbing itself (observe_completion on both substrates)
    // does not perturb placement.
    assert_strict_parity(SchedulerKind::MobjAdaptive);
}

#[test]
fn fcfs_work_items_match_across_substrates() {
    // FCFS breaks idle ties with a time-salted hash, so *placement* is
    // substrate-dependent by design; the scheduler-visible work stream
    // must still agree.
    let (sim, ..) = run_sim(SchedulerKind::Fcfs);
    let (live, ..) = run_service(SchedulerKind::Fcfs);
    assert_weak_parity(SchedulerKind::Fcfs, &sim, &live);
}

// ---------------------------------------------------------------------
// Overload-policy parity: the admission layer lives inside the shared
// runtime, so both substrates must take identical admission, coalescing,
// expiry, and escalation decisions on identical workloads. Decisions that
// depend on *measured durations* (graduated deadlines, post-warm-up ε
// gates) are legitimately clock-dependent; the tests below pin the
// decision to the workload shape — degenerate knobs (a zero cap, a zero
// deadline, a zero escalation age) or single-cycle windows wide enough
// that wall-clock jitter cannot reorder arrivals across cycles.
// ---------------------------------------------------------------------

/// An admission-layer decision in substrate-independent normal form.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum PolicyKey {
    Admitted(u64),
    Rejected(u64, RejectReason),
    Coalesced { superseded: u64, by: u64 },
    Expired(u64),
    Escalated(u64),
}

fn policy_decisions(events: &[TraceEvent]) -> Vec<PolicyKey> {
    let mut keys: Vec<PolicyKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Admitted { job, .. } => Some(PolicyKey::Admitted(job.0)),
            TraceEvent::Rejected { job, reason, .. } => Some(PolicyKey::Rejected(job.0, *reason)),
            TraceEvent::Coalesced { superseded, by, .. } => Some(PolicyKey::Coalesced {
                superseded: superseded.0,
                by: by.0,
            }),
            TraceEvent::Expired { job, .. } => Some(PolicyKey::Expired(job.0)),
            TraceEvent::BatchEscalated { job, .. } => Some(PolicyKey::Escalated(job.0)),
            _ => None,
        })
        .collect();
    keys.sort();
    keys
}

/// A policed live service over the parity store; the caller drives it and
/// must call `drain_and_shutdown` itself.
fn policed_service(
    tag: &str,
    policy: OverloadPolicy,
    cycle: SimDuration,
) -> (VizService, Arc<CollectingProbe>, std::path::PathBuf) {
    let root =
        std::env::temp_dir().join(format!("vizsched-parity-pol-{tag}-{}", std::process::id()));
    let mut store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Shells,
                dims: [16, 16, 32],
                bricks: NODES,
            },
            StoreDataset {
                field: Field::Plume,
                dims: [16, 16, 32],
                bricks: NODES,
            },
        ],
    )
    .unwrap();
    store.set_throttle(Some(4 << 20));
    let probe = Arc::new(CollectingProbe::new());
    let config = ServiceConfig::default()
        .nodes(NODES)
        .mem_quota(MEM_QUOTA)
        .image_size(32, 32)
        .cycle(cycle)
        .overload(policy)
        .probe(probe.clone());
    (VizService::start(config, Arc::new(store)), probe, root)
}

/// The simulator's image of a policed run: the same physical catalog, an
/// explicit job list, the same cycle and policy.
fn run_sim_policy(
    tag: &str,
    policy: OverloadPolicy,
    cycle: SimDuration,
    jobs: Vec<Job>,
) -> (Vec<TraceEvent>, vizsched_sim::SimOutcome) {
    let root = std::env::temp_dir().join(format!(
        "vizsched-parity-polcat-{tag}-{}",
        std::process::id()
    ));
    let store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Shells,
                dims: [16, 16, 32],
                bricks: NODES,
            },
            StoreDataset {
                field: Field::Plume,
                dims: [16, 16, 32],
                bricks: NODES,
            },
        ],
    )
    .unwrap();
    let catalog = store.catalog().clone();
    std::fs::remove_dir_all(root).ok();

    let cluster = ClusterSpec::homogeneous(NODES, MEM_QUOTA);
    let mut config = SimConfig::new(cluster, CostParams::default(), 1 << 30);
    config.cycle = cycle;
    let probe = Arc::new(CollectingProbe::new());
    let outcome = Simulation::new(config, Vec::new()).run_opts(
        jobs,
        RunOptions::new(SchedulerKind::Ours)
            .label("parity-policy")
            .catalog(catalog)
            .overload(policy)
            .probe(probe.clone()),
    );
    (probe.take(), outcome)
}

fn interactive_job(id: u64, action: u64, dataset: u32, at_ms: u64, azimuth: f32) -> Job {
    Job {
        id: JobId(id),
        kind: JobKind::Interactive {
            user: UserId(0),
            action: ActionId(action),
        },
        dataset: DatasetId(dataset),
        issue_time: SimTime::from_millis(at_ms),
        frame: FrameParams {
            azimuth,
            ..FrameParams::default()
        },
    }
}

const CYCLE_30MS: SimDuration = SimDuration::from_millis(30);
/// Wide enough that a burst of back-to-back client sends always lands
/// inside one cycle, regardless of thread-scheduling jitter.
const WIDE_CYCLE: SimDuration = SimDuration::from_millis(500);

/// An active policy whose caps are far above anything the serialized
/// workload reaches: the admission layer observes without intervening.
fn permissive_policy() -> OverloadPolicy {
    OverloadPolicy {
        max_in_flight: Some(1000),
        max_per_user: Some(1000),
        deadline: Some(SimDuration::from_secs(120)),
        coalesce_interactive: true,
        batch_escalation_age: Some(SimDuration::from_secs(120)),
    }
}

#[test]
fn permissive_policy_admits_identically_and_preserves_strict_parity() {
    let policy = permissive_policy();
    let jobs: Vec<Job> = workload()
        .iter()
        .enumerate()
        .map(|(i, &(dataset, azimuth))| {
            interactive_job(i as u64, i as u64, dataset as u32, i as u64 * 1000, azimuth)
        })
        .collect();
    let (sim, sim_outcome) = run_sim_policy("permissive", policy, CYCLE_30MS, jobs);

    let (service, probe, root) = policed_service("permissive", policy, CYCLE_30MS);
    let client = ServiceClient::new(UserId(0), service.request_sender());
    for (i, &(dataset, azimuth)) in workload().iter().enumerate() {
        let frame = FrameParams {
            azimuth,
            ..FrameParams::default()
        };
        let rx = client.render_interactive(ActionId(i as u64), DatasetId(dataset as u32), frame);
        rx.recv_timeout(Duration::from_secs(60))
            .expect("frame arrives")
            .expect_frame();
    }
    let stats = service.drain_and_shutdown();
    let live = probe.take();
    std::fs::remove_dir_all(root).ok();

    assert_weak_parity(SchedulerKind::Ours, &sim, &live);
    assert_eq!(
        assignments(&sim),
        assignments(&live),
        "permissive policy must not perturb placement"
    );
    let decisions = policy_decisions(&sim);
    assert_eq!(decisions, policy_decisions(&live));
    // Every job admitted, nothing shed on either substrate.
    assert_eq!(
        decisions,
        (0..workload().len() as u64)
            .map(PolicyKey::Admitted)
            .collect::<Vec<_>>()
    );
    assert_eq!(sim_outcome.overload, stats.overload);
    assert_eq!(stats.overload.shed(), 0);
}

#[test]
fn zero_cap_rejects_identically_on_both_substrates() {
    let policy = OverloadPolicy {
        max_in_flight: Some(0),
        ..OverloadPolicy::default()
    };
    let jobs: Vec<Job> = workload()
        .iter()
        .enumerate()
        .map(|(i, &(dataset, azimuth))| {
            interactive_job(i as u64, i as u64, dataset as u32, i as u64 * 1000, azimuth)
        })
        .collect();
    let (sim, sim_outcome) = run_sim_policy("cap0", policy, CYCLE_30MS, jobs);

    let (service, probe, root) = policed_service("cap0", policy, CYCLE_30MS);
    let client = ServiceClient::new(UserId(0), service.request_sender());
    for (i, &(dataset, azimuth)) in workload().iter().enumerate() {
        let frame = FrameParams {
            azimuth,
            ..FrameParams::default()
        };
        let rx = client.render_interactive(ActionId(i as u64), DatasetId(dataset as u32), frame);
        let reply = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("a verdict arrives");
        assert!(
            matches!(
                reply.outcome,
                RenderOutcome::Rejected(RejectReason::GlobalCap)
            ),
            "frame {i}: expected GlobalCap rejection, got {:?}",
            reply.outcome
        );
    }
    let stats = service.drain_and_shutdown();
    let live = probe.take();
    std::fs::remove_dir_all(root).ok();

    let decisions = policy_decisions(&sim);
    assert_eq!(decisions, policy_decisions(&live));
    assert_eq!(
        decisions,
        (0..workload().len() as u64)
            .map(|j| PolicyKey::Rejected(j, RejectReason::GlobalCap))
            .collect::<Vec<_>>()
    );
    assert_eq!(sim_outcome.overload, stats.overload);
    assert_eq!(stats.jobs_completed, 0);
    assert_eq!(
        sim_outcome.record.jobs.len(),
        0,
        "shed jobs leave no record"
    );
}

#[test]
fn zero_deadline_expires_identically_on_both_substrates() {
    let policy = OverloadPolicy {
        deadline: Some(SimDuration::ZERO),
        ..OverloadPolicy::default()
    };
    let jobs: Vec<Job> = workload()
        .iter()
        .enumerate()
        .map(|(i, &(dataset, azimuth))| {
            interactive_job(i as u64, i as u64, dataset as u32, i as u64 * 1000, azimuth)
        })
        .collect();
    let (sim, sim_outcome) = run_sim_policy("deadline0", policy, CYCLE_30MS, jobs);

    let (service, probe, root) = policed_service("deadline0", policy, CYCLE_30MS);
    let client = ServiceClient::new(UserId(0), service.request_sender());
    for (i, &(dataset, azimuth)) in workload().iter().enumerate() {
        let frame = FrameParams {
            azimuth,
            ..FrameParams::default()
        };
        let rx = client.render_interactive(ActionId(i as u64), DatasetId(dataset as u32), frame);
        let reply = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("a verdict arrives");
        assert!(
            matches!(
                reply.outcome,
                RenderOutcome::Dropped(vizsched_metrics::DropReason::DeadlineExpired)
            ),
            "frame {i}: expected deadline drop, got {:?}",
            reply.outcome
        );
    }
    let stats = service.drain_and_shutdown();
    let live = probe.take();
    std::fs::remove_dir_all(root).ok();

    let expected: Vec<PolicyKey> = (0..workload().len() as u64)
        .flat_map(|j| [PolicyKey::Admitted(j), PolicyKey::Expired(j)])
        .collect();
    let normalize = |mut keys: Vec<PolicyKey>| {
        keys.sort();
        keys
    };
    let decisions = policy_decisions(&sim);
    assert_eq!(decisions, policy_decisions(&live));
    assert_eq!(normalize(decisions), normalize(expected));
    assert_eq!(sim_outcome.overload, stats.overload);
    assert_eq!(stats.overload.expired, workload().len() as u64);
}

#[test]
fn coalescing_supersedes_identically_on_both_substrates() {
    let policy = OverloadPolicy {
        coalesce_interactive: true,
        ..OverloadPolicy::default()
    };
    // Three frames of action 0 and one of action 1, all inside one wide
    // cycle: the two older action-0 frames must be superseded. Issue
    // times start at 1 ms — the sim fires a cycle at t = 0, and a job
    // issued exactly then would dispatch before the rest arrive (the
    // live head's first tick is a full cycle after startup).
    let jobs = vec![
        interactive_job(0, 0, 0, 1, 0.10),
        interactive_job(1, 0, 0, 2, 0.20),
        interactive_job(2, 1, 1, 3, 0.30),
        interactive_job(3, 0, 0, 4, 0.40),
    ];
    let (sim, sim_outcome) = run_sim_policy("coalesce", policy, WIDE_CYCLE, jobs);

    let (service, probe, root) = policed_service("coalesce", policy, WIDE_CYCLE);
    let client = ServiceClient::new(UserId(0), service.request_sender());
    let frame = |azimuth: f32| FrameParams {
        azimuth,
        ..FrameParams::default()
    };
    let receivers = [
        client.render_interactive(ActionId(0), DatasetId(0), frame(0.10)),
        client.render_interactive(ActionId(0), DatasetId(0), frame(0.20)),
        client.render_interactive(ActionId(1), DatasetId(1), frame(0.30)),
        client.render_interactive(ActionId(0), DatasetId(0), frame(0.40)),
    ];
    let replies: Vec<RenderReply> = receivers
        .iter()
        .map(|rx| {
            rx.recv_timeout(Duration::from_secs(60))
                .expect("every frame gets a reply")
        })
        .collect();
    let stats = service.drain_and_shutdown();
    let live = probe.take();
    std::fs::remove_dir_all(root).ok();

    // Frames 0 and 1 superseded (by 1 then by 3); frames 2 and 3 render.
    assert!(matches!(
        replies[0].outcome,
        RenderOutcome::Dropped(vizsched_metrics::DropReason::Superseded)
    ));
    assert!(matches!(
        replies[1].outcome,
        RenderOutcome::Dropped(vizsched_metrics::DropReason::Superseded)
    ));
    assert!(matches!(replies[2].outcome, RenderOutcome::Frame(_)));
    assert!(matches!(replies[3].outcome, RenderOutcome::Frame(_)));

    let decisions = policy_decisions(&sim);
    assert_eq!(decisions, policy_decisions(&live));
    assert!(decisions.contains(&PolicyKey::Coalesced {
        superseded: 0,
        by: 1
    }));
    assert!(decisions.contains(&PolicyKey::Coalesced {
        superseded: 1,
        by: 3
    }));
    assert_eq!(sim_outcome.overload, stats.overload);
    assert_eq!(stats.overload.coalesced, 2);
    assert_eq!(stats.jobs_completed, 2);
}

#[test]
fn zero_escalation_age_escalates_identically_on_both_substrates() {
    let policy = OverloadPolicy {
        batch_escalation_age: Some(SimDuration::ZERO),
        ..OverloadPolicy::default()
    };
    // One interactive job occupies every node in the arrival cycle (the
    // parity datasets brick into exactly NODES chunks), so the ε gate
    // defers the whole cold batch on both substrates; the zero
    // anti-starvation age then escalates it wholesale at the next cycle.
    // Issue times start at 1 ms so every job buffers into the same cycle
    // (the sim fires a cycle at t = 0 that would dispatch the
    // interactive job alone and leave the batch undeferred).
    let jobs = vec![
        interactive_job(0, 0, 0, 1, 0.10),
        Job {
            id: JobId(1),
            kind: JobKind::Batch {
                user: UserId(1),
                request: BatchId(0),
                frame: 0,
            },
            dataset: DatasetId(1),
            issue_time: SimTime::from_millis(2),
            frame: FrameParams {
                azimuth: 0.50,
                ..FrameParams::default()
            },
        },
        Job {
            id: JobId(2),
            kind: JobKind::Batch {
                user: UserId(1),
                request: BatchId(0),
                frame: 1,
            },
            dataset: DatasetId(1),
            issue_time: SimTime::from_millis(3),
            frame: FrameParams {
                azimuth: 0.60,
                ..FrameParams::default()
            },
        },
    ];
    let (sim, sim_outcome) = run_sim_policy("escalate0", policy, WIDE_CYCLE, jobs);

    let (service, probe, root) = policed_service("escalate0", policy, WIDE_CYCLE);
    let interactive = ServiceClient::new(UserId(0), service.request_sender());
    let batch_user = ServiceClient::new(UserId(1), service.request_sender());
    let rx_int = interactive.render_interactive(
        ActionId(0),
        DatasetId(0),
        FrameParams {
            azimuth: 0.10,
            ..FrameParams::default()
        },
    );
    let batch_frames: Vec<FrameParams> = [0.50f32, 0.60]
        .iter()
        .map(|&azimuth| FrameParams {
            azimuth,
            ..FrameParams::default()
        })
        .collect();
    let rx_batch = batch_user.render_batch(BatchId(0), DatasetId(1), &batch_frames);
    rx_int
        .recv_timeout(Duration::from_secs(60))
        .expect("interactive frame")
        .expect_frame();
    for _ in 0..batch_frames.len() {
        rx_batch
            .recv_timeout(Duration::from_secs(60))
            .expect("batch frame")
            .expect_frame();
    }
    let stats = service.drain_and_shutdown();
    let live = probe.take();
    std::fs::remove_dir_all(root).ok();

    let decisions = policy_decisions(&sim);
    assert_eq!(decisions, policy_decisions(&live));
    assert!(
        decisions.contains(&PolicyKey::Escalated(1))
            && decisions.contains(&PolicyKey::Escalated(2)),
        "both batch jobs escalate: {decisions:?}"
    );
    assert_eq!(sim_outcome.overload, stats.overload);
    assert_eq!(stats.overload.escalated, 2);
    // Escalation is a promotion, not a drop: all three jobs complete.
    assert_eq!(stats.jobs_completed, 3);
    assert_eq!(sim_outcome.incomplete_jobs, 0);
}
