//! Simulator-vs-service parity: both drive the *same* shared head-node
//! runtime (`vizsched-runtime`), so an identical serialized workload over
//! an identical catalog must produce identical scheduler-visible event
//! sequences — modulo wall-clock timestamps and measured durations, which
//! the live service observes from real disks and renders.
//!
//! The topology is chosen to make placement substrate-independent for the
//! deterministic policies: each dataset bricks into exactly `nodes`
//! chunks, so a cold job spreads one chunk per node through index
//! tie-breaks and a warm job maps every chunk to its unique cache holder
//! (zero movement strictly wins), never comparing measured estimate
//! *magnitudes* — the one quantity that legitimately differs between the
//! virtual and the wall clock.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;
use vizsched_core::prelude::*;
use vizsched_metrics::{CollectingProbe, TraceEvent};
use vizsched_service::{ChunkStore, ServiceClient, ServiceConfig, StoreDataset, VizService};
use vizsched_sim::{RunOptions, SimConfig, Simulation};
use vizsched_volume::Field;

const NODES: usize = 4;
const MEM_QUOTA: u64 = 1 << 20;

/// (job, task, chunk, node, interactive) — sorted, so dispatch interleaving
/// across cycles doesn't matter, only the placements themselves.
type AssignKey = (u64, u32, u64, u32, bool);
/// (job, task, chunk, node, miss).
type DoneKey = (u64, u32, u64, u32, bool);

fn assignments(events: &[TraceEvent]) -> Vec<AssignKey> {
    let mut keys: Vec<AssignKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Assignment {
                job,
                task,
                chunk,
                node,
                interactive,
                ..
            } => Some((job.0, *task, chunk.as_u64(), node.0, *interactive)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn dones(events: &[TraceEvent]) -> Vec<DoneKey> {
    let mut keys: Vec<DoneKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TaskDone {
                job,
                task,
                chunk,
                node,
                miss,
                ..
            } => Some((job.0, *task, chunk.as_u64(), node.0, *miss)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn cache_loads(events: &[TraceEvent]) -> BTreeSet<(u32, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::CacheLoad { node, chunk, .. } => Some((node.0, chunk.as_u64())),
            _ => None,
        })
        .collect()
}

fn estimate_chunks(events: &[TraceEvent]) -> BTreeSet<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::EstimateCorrection { chunk, .. } => Some(chunk.as_u64()),
            _ => None,
        })
        .collect()
}

fn job_done_order(events: &[TraceEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::JobDone { job, .. } => Some(job.0),
            _ => None,
        })
        .collect()
}

fn count(events: &[TraceEvent], f: impl Fn(&TraceEvent) -> bool) -> usize {
    events.iter().filter(|e| f(e)).count()
}

/// The serialized workload both substrates replay: `(dataset, azimuth)`
/// per job, one job in flight at a time. Dataset 0 runs cold then warm,
/// dataset 1 interleaves to exercise per-node cache coexistence.
fn workload() -> Vec<(u64, f32)> {
    vec![
        (0, 0.10),
        (0, 0.20),
        (1, 0.30),
        (0, 0.40),
        (1, 0.50),
        (1, 0.60),
    ]
}

/// Run the workload through the live service, one frame at a time.
fn run_service(kind: SchedulerKind) -> (Vec<TraceEvent>, u64, u64) {
    let root = std::env::temp_dir().join(format!(
        "vizsched-parity-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let mut store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Shells,
                dims: [16, 16, 32],
                bricks: NODES,
            },
            StoreDataset {
                field: Field::Plume,
                dims: [16, 16, 32],
                bricks: NODES,
            },
        ],
    )
    .unwrap();
    // Throttle the store so every measured load is comfortably nonzero:
    // a zero measured estimate would erase the locality advantage the
    // deterministic placement argument rests on.
    store.set_throttle(Some(4 << 20));
    let probe = Arc::new(CollectingProbe::new());
    let config = ServiceConfig::default()
        .nodes(NODES)
        .mem_quota(MEM_QUOTA)
        .image_size(32, 32)
        .scheduler(kind)
        .probe(probe.clone());
    let service = VizService::start(config, Arc::new(store));
    let client = ServiceClient::new(UserId(0), service.request_sender());
    for (i, &(dataset, azimuth)) in workload().iter().enumerate() {
        let frame = FrameParams {
            azimuth,
            ..FrameParams::default()
        };
        let rx = client.render_interactive(ActionId(i as u64), DatasetId(dataset as u32), frame);
        rx.recv_timeout(Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("{}: frame {i} never arrived: {e}", kind.name()));
    }
    let stats = service.drain_and_shutdown();
    std::fs::remove_dir_all(root).ok();
    (probe.take(), stats.cache_hits, stats.cache_misses)
}

/// Replay the same workload in the simulator over the *same physical
/// catalog* (the store's bricking), jobs spaced far enough apart that each
/// completes before the next issues — the virtual-clock image of the
/// serialized client.
fn run_sim(kind: SchedulerKind) -> (Vec<TraceEvent>, u64, u64) {
    let root = std::env::temp_dir().join(format!(
        "vizsched-parity-cat-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Shells,
                dims: [16, 16, 32],
                bricks: NODES,
            },
            StoreDataset {
                field: Field::Plume,
                dims: [16, 16, 32],
                bricks: NODES,
            },
        ],
    )
    .unwrap();
    let catalog = store.catalog().clone();
    std::fs::remove_dir_all(root).ok();

    let cluster = ClusterSpec::homogeneous(NODES, MEM_QUOTA);
    let config = SimConfig::new(cluster, CostParams::default(), 1 << 30);
    let jobs: Vec<Job> = workload()
        .iter()
        .enumerate()
        .map(|(i, &(dataset, azimuth))| Job {
            id: JobId(i as u64),
            kind: JobKind::Interactive {
                user: UserId(0),
                action: ActionId(i as u64),
            },
            dataset: DatasetId(dataset as u32),
            issue_time: SimTime::from_secs(i as u64),
            frame: FrameParams {
                azimuth,
                ..FrameParams::default()
            },
        })
        .collect();
    let probe = Arc::new(CollectingProbe::new());
    let outcome = Simulation::new(config, Vec::new()).run_opts(
        jobs,
        RunOptions::new(kind)
            .label("parity")
            .catalog(catalog)
            .probe(probe.clone()),
    );
    assert_eq!(
        outcome.incomplete_jobs,
        0,
        "{}: sim run stalled",
        kind.name()
    );
    (
        probe.take(),
        outcome.record.cache_hits,
        outcome.record.cache_misses,
    )
}

/// Invariants that must hold for *any* policy, placement-deterministic or
/// not: same work items, same completion order, same invocation balance.
fn assert_weak_parity(kind: SchedulerKind, sim: &[TraceEvent], live: &[TraceEvent]) {
    let name = kind.name();
    let strip_node = |keys: Vec<AssignKey>| -> Vec<(u64, u32, u64, bool)> {
        let mut k: Vec<_> = keys
            .into_iter()
            .map(|(j, t, c, _, i)| (j, t, c, i))
            .collect();
        k.sort_unstable();
        k
    };
    assert_eq!(
        strip_node(assignments(sim)),
        strip_node(assignments(live)),
        "{name}: dispatched work items differ"
    );
    let strip_done = |keys: Vec<DoneKey>| -> Vec<(u64, u32, u64)> {
        let mut k: Vec<_> = keys.into_iter().map(|(j, t, c, _, _)| (j, t, c)).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(
        strip_done(dones(sim)),
        strip_done(dones(live)),
        "{name}: completed work items differ"
    );
    assert_eq!(
        job_done_order(sim),
        job_done_order(live),
        "{name}: job completion order differs"
    );
    for (tag, events) in [("sim", sim), ("live", live)] {
        let starts = count(events, |e| matches!(e, TraceEvent::CycleStart { .. }));
        let ends = count(events, |e| matches!(e, TraceEvent::CycleEnd { .. }));
        assert_eq!(starts, ends, "{name}/{tag}: unbalanced cycles");
        assert!(
            events.windows(2).all(|w| w[0].time() <= w[1].time()),
            "{name}/{tag}: probe stream not time-ordered"
        );
    }
}

/// Full placement parity, for policies whose tie-breaks are substrate
/// independent (index order / locality, never the wall clock): identical
/// node choices, identical per-node cache evolution, identical hit/miss
/// realization.
fn assert_strict_parity(kind: SchedulerKind) {
    let (sim, sim_hits, sim_misses) = run_sim(kind);
    let (live, live_hits, live_misses) = run_service(kind);
    let name = kind.name();
    assert_weak_parity(kind, &sim, &live);
    assert_eq!(
        assignments(&sim),
        assignments(&live),
        "{name}: task placement diverged between substrates"
    );
    assert_eq!(
        dones(&sim),
        dones(&live),
        "{name}: execution (node, miss) realization diverged"
    );
    assert_eq!(
        cache_loads(&sim),
        cache_loads(&live),
        "{name}: per-node cache contents diverged"
    );
    assert_eq!(
        estimate_chunks(&sim),
        estimate_chunks(&live),
        "{name}: estimate-corrected chunk sets differ"
    );
    assert_eq!(
        (sim_hits, sim_misses),
        (live_hits, live_misses),
        "{name}: aggregate hit/miss counters differ"
    );
}

#[test]
fn ours_places_identically_on_both_substrates() {
    assert_strict_parity(SchedulerKind::Ours);
}

#[test]
fn fcfsl_places_identically_on_both_substrates() {
    assert_strict_parity(SchedulerKind::Fcfsl);
}

#[test]
fn fcfs_work_items_match_across_substrates() {
    // FCFS breaks idle ties with a time-salted hash, so *placement* is
    // substrate-dependent by design; the scheduler-visible work stream
    // must still agree.
    let (sim, ..) = run_sim(SchedulerKind::Fcfs);
    let (live, ..) = run_service(SchedulerKind::Fcfs);
    assert_weak_parity(SchedulerKind::Fcfs, &sim, &live);
}
