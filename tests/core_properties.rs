//! Property-based tests of the core invariants: cost-model monotonicity,
//! data decomposition, node-memory bookkeeping, and Definition 4.

use proptest::prelude::*;
use vizsched_core::cost::{framerate, CostParams};
use vizsched_core::data::{DatasetDesc, DecompositionPolicy};
use vizsched_core::ids::{ChunkId, DatasetId};
use vizsched_core::memory::{EvictionPolicy, NodeMemory};
use vizsched_core::time::SimTime;

proptest! {
    /// I/O time is monotone in bytes and strictly positive.
    #[test]
    fn io_time_monotone(a in 0u64..1 << 40, b in 0u64..1 << 40) {
        let cost = CostParams::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cost.io_time(lo) <= cost.io_time(hi));
        prop_assert!(cost.io_time(lo).as_micros() >= 1);
    }

    /// A cached task is never slower than a cold one, and the difference is
    /// exactly the I/O time.
    #[test]
    fn cached_never_slower(bytes in 1u64..1 << 36, group in 1u32..129) {
        let cost = CostParams::default();
        let warm = cost.task_exec(bytes, true, group);
        let cold = cost.task_exec(bytes, false, group);
        prop_assert!(warm <= cold);
        prop_assert_eq!(cold - warm, cost.io_time(bytes));
    }

    /// Decomposition covers the dataset exactly: chunk sizes sum to the
    /// total, no chunk exceeds Chk_max, and the count is minimal.
    #[test]
    fn decomposition_covers(bytes in 1u64..1 << 38, max in 1u64..1 << 32) {
        let policy = DecompositionPolicy::MaxChunkSize { max_bytes: max };
        let dataset = DatasetDesc::sized(DatasetId(0), bytes);
        let chunks = policy.decompose(&dataset);
        let total: u64 = chunks.iter().map(|c| c.bytes).sum();
        prop_assert_eq!(total, bytes);
        prop_assert!(chunks.iter().all(|c| c.bytes <= max));
        // Minimality: one fewer chunk would overflow Chk_max.
        if chunks.len() > 1 {
            prop_assert!((chunks.len() as u64 - 1) * max < bytes);
        }
    }

    /// Uniform decomposition always yields exactly `nodes` chunks summing
    /// to the total.
    #[test]
    fn uniform_decomposition(bytes in 1u64..1 << 38, nodes in 1u32..256) {
        let policy = DecompositionPolicy::Uniform { nodes };
        let dataset = DatasetDesc::sized(DatasetId(0), bytes);
        let chunks = policy.decompose(&dataset);
        prop_assert_eq!(chunks.len(), nodes as usize);
        prop_assert_eq!(chunks.iter().map(|c| c.bytes).sum::<u64>(), bytes);
    }

    /// NodeMemory never exceeds its quota (except for a single oversized
    /// chunk), `used` always equals the sum of resident chunk sizes, and
    /// every reported eviction was resident beforehand.
    #[test]
    fn node_memory_invariants(
        ops in prop::collection::vec((0u32..40, 1u64..400), 1..120),
        quota in 100u64..2000,
        policy_pick in 0u8..3,
    ) {
        let policy = match policy_pick {
            0 => EvictionPolicy::Lru,
            1 => EvictionPolicy::Fifo,
            _ => EvictionPolicy::Random { seed: 5 },
        };
        let mut mem = NodeMemory::with_policy(quota, policy);
        let mut resident: std::collections::HashMap<ChunkId, u64> =
            std::collections::HashMap::new();
        for (idx, bytes) in ops {
            let chunk = ChunkId::new(DatasetId(0), idx);
            if mem.contains(chunk) {
                mem.touch(chunk);
            } else {
                let evicted = mem.load(chunk, bytes);
                for victim in evicted {
                    prop_assert!(resident.remove(&victim).is_some(),
                        "evicted chunk {victim} was not resident");
                }
                resident.insert(chunk, bytes);
            }
            let model_used: u64 = resident.values().sum();
            prop_assert_eq!(mem.used(), model_used);
            prop_assert_eq!(mem.len(), resident.len());
            // Quota can only be exceeded by a lone oversized chunk.
            if mem.used() > quota {
                prop_assert_eq!(mem.len(), 1);
            }
        }
    }

    /// Definition 4 is invariant to the order finish times are recorded
    /// and bounded by the reciprocal of the smallest gap.
    #[test]
    fn framerate_properties(mut finishes in prop::collection::vec(0u64..10_000_000u64, 2..50)) {
        let times: Vec<SimTime> = finishes.iter().map(|&t| SimTime::from_micros(t)).collect();
        let forward = framerate(&times);
        finishes.reverse();
        let reversed: Vec<SimTime> =
            finishes.iter().map(|&t| SimTime::from_micros(t)).collect();
        let backward = framerate(&reversed);
        prop_assert_eq!(forward, backward);
        let fps = forward.unwrap();
        prop_assert!(fps > 0.0);
    }
}

#[test]
fn framerate_of_steady_completions_matches_rate() {
    // 100 frames, one every 25 ms -> 40 fps exactly.
    let times: Vec<SimTime> = (0..100).map(|i| SimTime::from_millis(25 * i)).collect();
    let fps = framerate(&times).unwrap();
    assert!((fps - 40.0).abs() < 1e-6);
}
