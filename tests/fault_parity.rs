//! Fault-plane parity: an identical [`FaultPlan`] executed by the live
//! sharded service and by the discrete-event simulator must produce the
//! same failover behavior — the same post-crash shard routing, the same
//! global task placements, and the same `shard_failed` /
//! `shard_recovered` accounting — because both substrates drive the same
//! `vizsched-runtime` control plane through the same fault entry points.
//!
//! The live client paces the workload to the simulator's timeline (one
//! frame per second, each completing in well under half a second), so
//! every fault in the plan fires in the same inter-job gap on both
//! substrates and the interleavings coincide. The placement-determinism
//! argument of `sim_service_shard_parity.rs` then carries over across
//! the failover: adoption rebuilds cold per-node tables on both sides,
//! cold spreads resolve by index tie-breaks, warm chunks map to their
//! unique holder.
//!
//! The file also holds the respawn-under-sharding check: a node killed
//! out of a shard's slice (with `restart_nodes` on) rejoins *its own*
//! shard and serves cache-local work again.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vizsched_core::prelude::*;
use vizsched_metrics::{CollectingProbe, TraceEvent};
use vizsched_routing::ShardMap;
use vizsched_service::{
    ChunkStore, FaultPlan, ServiceClient, ServiceConfig, StoreDataset, VizService,
};
use vizsched_sim::{RunOptions, SimConfig, Simulation};
use vizsched_volume::Field;

const NODES: usize = 4;
const SHARDS: usize = 2;
const BRICKS: usize = NODES / SHARDS;
const MEM_QUOTA: u64 = 1 << 20;

/// The plan both substrates execute, timed into the gaps of a
/// one-job-per-second workload: shard 0's head dies at 2.5 s (its slice
/// fails over to shard 1), an adopted node crashes at 4.5 s, and rejoins
/// at 6.5 s.
fn plan() -> FaultPlan {
    FaultPlan::new()
        .shard_crash_at(SimTime::from_millis(2_500), vizsched_core::ids::ShardId(0))
        .crash_at(SimTime::from_millis(4_500), NodeId(0))
        .respawn_at(SimTime::from_millis(6_500), NodeId(0))
}

fn store_datasets() -> Vec<StoreDataset> {
    [Field::Shells, Field::Plume, Field::Shells, Field::Plume]
        .into_iter()
        .map(|field| StoreDataset {
            field,
            dims: [16, 16, 32],
            bricks: BRICKS,
        })
        .collect()
}

/// Every dataset twice (cold then warm), one job per second so each
/// frame drains before the next fault can fire.
fn workload() -> Vec<(u64, f32)> {
    vec![
        (0, 0.10),
        (1, 0.20),
        (2, 0.30),
        (3, 0.40),
        (0, 0.50),
        (1, 0.60),
        (2, 0.70),
        (3, 0.80),
    ]
}

type AssignKey = (u64, u32, u64, u32);

fn assignments(events: &[TraceEvent]) -> Vec<AssignKey> {
    let mut keys: Vec<AssignKey> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Assignment {
                job,
                task,
                chunk,
                node,
                ..
            } => Some((job.0, *task, chunk.as_u64(), node.0)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

fn shard_assignments(events: &[TraceEvent]) -> Vec<(u64, u32)> {
    let mut keys: Vec<(u64, u32)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ShardAssigned { job, shard, .. } => Some((job.0, shard.0)),
            _ => None,
        })
        .collect();
    keys.sort_unstable();
    keys
}

/// The failover accounting a substrate reports, time-stripped: the
/// injected fault sequence plus the (shard, orphaned) / (shard, adopted)
/// pairs of the failure and recovery events.
#[derive(Debug, PartialEq, Eq)]
struct FailoverTrace {
    injected: Vec<(vizsched_metrics::InjectedFault, u32, u32)>,
    failed: Vec<(u32, usize)>,
    recovered: Vec<(u32, usize)>,
}

fn failover_trace(events: &[TraceEvent]) -> FailoverTrace {
    let mut trace = FailoverTrace {
        injected: Vec::new(),
        failed: Vec::new(),
        recovered: Vec::new(),
    };
    for e in events {
        match e {
            TraceEvent::FaultInjected {
                kind,
                target,
                param,
                ..
            } => trace.injected.push((*kind, *target, *param)),
            TraceEvent::ShardFailed {
                shard, orphaned, ..
            } => trace.failed.push((shard.0, *orphaned)),
            TraceEvent::ShardRecovered { shard, adopted, .. } => {
                trace.recovered.push((shard.0, *adopted))
            }
            _ => {}
        }
    }
    trace
}

/// Run the paced workload through the live sharded service under the
/// plan: frame `i` is issued `i` seconds after service start, so the
/// fault timeline interleaves with the job stream exactly as in the sim.
fn run_service(kind: SchedulerKind) -> Vec<TraceEvent> {
    let root = std::env::temp_dir().join(format!(
        "vizsched-fault-parity-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let mut store = ChunkStore::create(&root, &store_datasets()).unwrap();
    store.set_throttle(Some(4 << 20));
    let probe = Arc::new(CollectingProbe::new());
    let config = ServiceConfig::default()
        .nodes(NODES)
        .shards(SHARDS)
        .mem_quota(MEM_QUOTA)
        .image_size(32, 32)
        .scheduler(kind)
        .fault_plan(plan())
        .probe(probe.clone());
    let start = Instant::now();
    let service = VizService::start(config, Arc::new(store));
    let client = ServiceClient::new(UserId(0), service.request_sender());
    for (i, &(dataset, azimuth)) in workload().iter().enumerate() {
        let due = Duration::from_secs(i as u64);
        let elapsed = start.elapsed();
        if elapsed < due {
            std::thread::sleep(due - elapsed);
        }
        let frame = FrameParams {
            azimuth,
            ..FrameParams::default()
        };
        let rx = client.render_interactive(ActionId(i as u64), DatasetId(dataset as u32), frame);
        rx.recv_timeout(Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("{}: frame {i} never arrived: {e}", kind.name()));
    }
    service.drain_and_shutdown();
    std::fs::remove_dir_all(root).ok();
    probe.take()
}

/// Replay the same workload and plan in the sharded simulator over the
/// same physical catalog.
fn run_sim(kind: SchedulerKind) -> Vec<TraceEvent> {
    let root = std::env::temp_dir().join(format!(
        "vizsched-fault-parity-cat-{}-{}",
        kind.name(),
        std::process::id()
    ));
    let store = ChunkStore::create(&root, &store_datasets()).unwrap();
    let catalog = store.catalog().clone();
    std::fs::remove_dir_all(root).ok();

    let cluster = ClusterSpec::homogeneous(NODES, MEM_QUOTA);
    let config = SimConfig::new(cluster, CostParams::default(), 1 << 30);
    let jobs: Vec<Job> = workload()
        .iter()
        .enumerate()
        .map(|(i, &(dataset, azimuth))| Job {
            id: JobId(i as u64),
            kind: JobKind::Interactive {
                user: UserId(0),
                action: ActionId(i as u64),
            },
            dataset: DatasetId(dataset as u32),
            issue_time: SimTime::from_secs(i as u64),
            frame: FrameParams {
                azimuth,
                ..FrameParams::default()
            },
        })
        .collect();
    let probe = Arc::new(CollectingProbe::new());
    let outcome = Simulation::new(config, Vec::new()).run_opts(
        jobs,
        RunOptions::new(kind)
            .label("fault-parity")
            .catalog(catalog)
            .shards(SHARDS)
            .fault_plan(plan())
            .probe(probe.clone()),
    );
    assert_eq!(
        outcome.incomplete_jobs,
        0,
        "{}: sim lost jobs across the failover",
        kind.name()
    );
    probe.take()
}

fn assert_fault_parity(kind: SchedulerKind) {
    let sim = run_sim(kind);
    let live = run_service(kind);
    let name = kind.name();

    // Identical failover accounting: same injected faults in the same
    // order, same orphan count at the shard failure (the paced workload
    // leaves no job in flight at 2.5 s), same adoption count.
    let sim_failover = failover_trace(&sim);
    assert_eq!(
        sim_failover,
        failover_trace(&live),
        "{name}: failover accounting diverged between substrates"
    );
    assert_eq!(
        sim_failover.failed,
        vec![(0, 0)],
        "{name}: shard 0 fails exactly once, orphan-free"
    );
    assert_eq!(
        sim_failover.recovered,
        vec![(1, BRICKS)],
        "{name}: the surviving shard adopts the dead shard's full slice"
    );

    // Identical shard routing, including every re-route after the crash.
    let routed = shard_assignments(&sim);
    assert_eq!(
        routed,
        shard_assignments(&live),
        "{name}: shard routing diverged between substrates"
    );
    assert_eq!(routed.len(), workload().len(), "{name}: every job routes");
    // Jobs issued after the 2.5 s crash never route to the dead shard.
    for &(job, shard) in &routed {
        if job >= 3 {
            assert_ne!(
                shard, 0,
                "{name}: J{job} routed to the dead shard after failover"
            );
        }
    }

    // Identical global task placement across crash, adoption, node
    // crash, and respawn.
    assert_eq!(
        assignments(&sim),
        assignments(&live),
        "{name}: (job, task, chunk, node) placement diverged across the failover"
    );

    // The crashed node serves nothing inside its down window: after its
    // 4.5 s crash no placement touches it until its 6.5 s respawn.
    for events in [&sim, &live] {
        let crash_pos = events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    TraceEvent::FaultInjected {
                        kind: vizsched_metrics::InjectedFault::NodeCrash,
                        target: 0,
                        ..
                    }
                )
            })
            .unwrap_or_else(|| panic!("{name}: node crash not injected"));
        let respawn_pos = events
            .iter()
            .position(|e| {
                matches!(
                    e,
                    TraceEvent::FaultInjected {
                        kind: vizsched_metrics::InjectedFault::NodeRespawn,
                        target: 0,
                        ..
                    }
                )
            })
            .unwrap_or_else(|| panic!("{name}: node respawn not injected"));
        assert!(crash_pos < respawn_pos, "{name}: crash precedes respawn");
        for e in &events[crash_pos..respawn_pos] {
            if let TraceEvent::Assignment { node, .. } = e {
                assert_ne!(node.0, 0, "{name}: placement on a crashed node");
            }
        }
    }
}

#[test]
fn ours_replays_an_identical_fault_plan_identically() {
    assert_fault_parity(SchedulerKind::Ours);
}

#[test]
fn fcfsl_replays_an_identical_fault_plan_identically() {
    assert_fault_parity(SchedulerKind::Fcfsl);
}

/// `restart_nodes` under `shards(n)`: a node killed out of a shard's
/// slice respawns, rejoins *its owning shard*, and serves cache-local
/// work for that shard's datasets again.
///
/// While node 2 is down its peers absorb its datasets' chunks, and warm
/// placement keeps mapping those chunks to their new holders — so the
/// proof that the respawned node rejoined is *fresh* data: datasets
/// first rendered after the respawn must cold-spread onto it, and a
/// repeat visit must find their chunks in its cache.
#[test]
fn respawned_node_rejoins_its_shard_slice() {
    let root = std::env::temp_dir().join(format!(
        "vizsched-fault-parity-respawn-{}",
        std::process::id()
    ));
    // Eight datasets: 0..4 feed round 1 (before the kill), 4..8 stay
    // untouched until after the respawn.
    let datasets: Vec<StoreDataset> = (0..8)
        .map(|i| StoreDataset {
            field: if i % 2 == 0 {
                Field::Shells
            } else {
                Field::Plume
            },
            dims: [16, 16, 32],
            bricks: BRICKS,
        })
        .collect();
    let mut store = ChunkStore::create(&root, &datasets).unwrap();
    store.set_throttle(Some(256 << 10)); // slow loads: the kill lands mid-burst
    let probe = Arc::new(CollectingProbe::new());
    let config = ServiceConfig::default()
        .nodes(NODES)
        .shards(SHARDS)
        .mem_quota(MEM_QUOTA)
        .image_size(32, 32)
        .restart_nodes(true)
        .probe(probe.clone());
    let service = VizService::start(config, Arc::new(store));
    let client = ServiceClient::new(UserId(0), service.request_sender());

    let frames: Vec<FrameParams> = (0..4)
        .map(|i| FrameParams {
            azimuth: i as f32 * 0.1,
            ..FrameParams::default()
        })
        .collect();

    // Round 1: a burst over datasets 0..4 (the ring feeds both shards),
    // with node 2 — shard 1's slice — killed while loads grind.
    let round1: Vec<_> = (0..4u32)
        .map(|d| client.render_batch(BatchId(d as u64), DatasetId(d), &frames))
        .collect();
    std::thread::sleep(Duration::from_millis(40));
    service.kill_node(2);
    for rx in &round1 {
        for _ in 0..frames.len() {
            rx.recv_timeout(Duration::from_secs(60))
                .expect("every round-1 frame survives the kill");
        }
    }

    // Rounds 2 and 3, after the respawn, over the fresh datasets 4..8: a
    // cold round that must spread one chunk per slice node — including
    // the respawned one — and a warm round that must find those chunks
    // where round 2 cached them.
    for round in 2..4u64 {
        let receivers: Vec<_> = (4..8u32)
            .map(|d| client.render_batch(BatchId(round * 10 + d as u64), DatasetId(d), &frames))
            .collect();
        for rx in &receivers {
            for _ in 0..frames.len() {
                rx.recv_timeout(Duration::from_secs(60))
                    .expect("every post-respawn frame arrives");
            }
        }
    }

    let stats = service.drain_and_shutdown();
    assert_eq!(stats.jobs_completed, 48, "3 rounds x 4 datasets x 4 frames");
    std::fs::remove_dir_all(root).ok();

    let events = probe.take();
    let fault_pos = events
        .iter()
        .position(|e| matches!(e, TraceEvent::NodeFault { node, .. } if node.0 == 2))
        .expect("the kill is observed");
    let up_pos = events
        .iter()
        .position(|e| matches!(e, TraceEvent::NodeUp { node, .. } if node.0 == 2))
        .expect("restart_nodes respawns the node");
    assert!(fault_pos < up_pos, "fault precedes the respawn");

    // The respawned node serves work again...
    let post_recovery: Vec<u64> = events[up_pos..]
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Assignment { chunk, node, .. } if node.0 == 2 => Some(chunk.as_u64()),
            _ => None,
        })
        .collect();
    assert!(
        !post_recovery.is_empty(),
        "the respawned node never served again"
    );
    // ...including cache-local work: some chunk lands on it twice after
    // the respawn — re-cached cold, then served warm in place.
    assert!(
        post_recovery
            .iter()
            .any(|c| post_recovery.iter().filter(|&x| x == c).count() >= 2),
        "no chunk was re-served from the respawned node's cache: {post_recovery:?}"
    );

    // ...and only for jobs its own shard owns: every placement on the
    // respawned node belongs to a job routed to the shard whose slice
    // contains node 2.
    let map = ShardMap::new(NODES, SHARDS);
    let mut owner = std::collections::HashMap::new();
    for e in &events {
        match e {
            TraceEvent::ShardAssigned { job, shard, .. } => {
                owner.insert(job.0, *shard);
            }
            TraceEvent::ShardMigrated { job, to, .. } => {
                owner.insert(job.0, *to);
            }
            TraceEvent::Assignment { job, node, .. } if node.0 == 2 => {
                let shard = owner.get(&job.0).expect("routed before dispatch");
                let span = map.span(*shard);
                assert!(
                    (span.base..span.base + span.nodes).contains(&2),
                    "J{} placed on node 2 but owned by {shard:?} (span [{}, {}))",
                    job.0,
                    span.base,
                    span.base + span.nodes,
                );
            }
            _ => {}
        }
    }
}
