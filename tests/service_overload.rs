//! Overload behavior of the *live* service stack: stale-frame coalescing
//! under a request burst, per-user admission caps, bounded batch deferral,
//! and the TCP boundary's `Overloaded` path with client-side retry.
//!
//! Timing note: the head's scheduling ticker free-runs, so a test that
//! relies on "these requests land in the same cycle" uses a wide cycle
//! (hundreds of ms) against a burst submitted in microseconds — the same
//! construction as the sim/service parity tests.

use std::sync::Arc;
use std::time::Duration;
use vizsched_core::prelude::*;
use vizsched_metrics::{DropReason, RejectReason};
use vizsched_service::{
    ChunkStore, ClientOptions, OverloadPolicy, RemoteClient, RenderOutcome, RenderReply,
    ServiceClient, ServiceConfig, StoreDataset, TcpServer, VizService, WireResponse,
};
use vizsched_volume::Field;

const NODES: usize = 4;
const WIDE_CYCLE: SimDuration = SimDuration::from_millis(300);

/// A policed live service over two small datasets that each brick into
/// exactly `NODES` chunks (one interactive job occupies every node, which
/// is what makes the ε gate defer a cold batch deterministically).
fn overload_service(tag: &str, policy: OverloadPolicy) -> (VizService, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!("vizsched-overload-{tag}-{}", std::process::id()));
    let store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Shells,
                dims: [16, 16, 32],
                bricks: NODES,
            },
            StoreDataset {
                field: Field::Plume,
                dims: [16, 16, 32],
                bricks: NODES,
            },
        ],
    )
    .expect("store");
    let config = ServiceConfig::default()
        .nodes(NODES)
        .image_size(32, 32)
        .cycle(WIDE_CYCLE)
        .overload(policy);
    (VizService::start(config, Arc::new(store)), root)
}

fn frame(azimuth: f32) -> FrameParams {
    FrameParams {
        azimuth,
        ..FrameParams::default()
    }
}

fn recv(rx: &crossbeam::channel::Receiver<RenderReply>, what: &str) -> RenderReply {
    rx.recv_timeout(Duration::from_secs(60))
        .unwrap_or_else(|e| panic!("{what}: no reply: {e}"))
}

/// A burst of same-action frames inside one cycle: only the newest
/// renders, every older one is superseded; a batch submitted alongside is
/// exempt from coalescing, gets deferred by the ε gate, escalates under
/// the zero anti-starvation age, and completes with a bounded start delay.
#[test]
fn burst_coalesces_stale_frames_and_admitted_batch_completes() {
    let policy = OverloadPolicy {
        coalesce_interactive: true,
        batch_escalation_age: Some(SimDuration::ZERO),
        ..OverloadPolicy::default()
    };
    let (service, root) = overload_service("burst", policy);
    let user = ServiceClient::new(UserId(0), service.request_sender());
    let batch_user = ServiceClient::new(UserId(1), service.request_sender());

    // Six frames of one camera drag, submitted without waiting — far
    // faster than any cycle. Then a three-frame batch over the other
    // (cold) dataset.
    let receivers: Vec<_> = (0..6)
        .map(|i| user.render_interactive(ActionId(0), DatasetId(0), frame(0.1 * i as f32)))
        .collect();
    let batch_frames: Vec<FrameParams> = (0..3).map(|i| frame(1.0 + 0.2 * i as f32)).collect();
    let batch_rx = batch_user.render_batch(BatchId(0), DatasetId(1), &batch_frames);

    let replies: Vec<RenderReply> = receivers
        .iter()
        .map(|rx| recv(rx, "interactive burst"))
        .collect();
    for (i, reply) in replies.iter().enumerate().take(5) {
        assert!(
            matches!(
                reply.outcome,
                RenderOutcome::Dropped(DropReason::Superseded)
            ),
            "frame {i} should be superseded, got {:?}",
            reply.outcome
        );
    }
    replies[5].clone().expect_frame();
    for i in 0..batch_frames.len() {
        recv(&batch_rx, "batch frame").expect_frame();
        let _ = i;
    }

    let stats = service.drain_and_shutdown();
    assert_eq!(stats.overload.admitted, 9, "6 interactive + 3 batch");
    assert_eq!(stats.overload.coalesced, 5);
    assert_eq!(stats.overload.rejected, 0);
    assert_eq!(stats.overload.expired, 0);
    assert_eq!(
        stats.overload.escalated, 3,
        "the cold batch defers behind the interactive pass, then the zero \
         age escalates all three jobs"
    );
    assert_eq!(stats.jobs_completed, 4, "1 surviving frame + 3 batch");

    // Admission is a promise: every admitted batch job completes, and its
    // start delay is bounded by the escalation age (zero) plus a few
    // cycles of dispatch slack on the wall clock.
    let bound = SimDuration::from_millis(5 * 300);
    for job in stats.record.batch_jobs() {
        assert!(job.is_complete(), "batch job {:?} incomplete", job.id);
        let start = job.timing.start.expect("batch job started");
        let delay = start - job.timing.issue;
        assert!(
            delay <= bound,
            "batch job {:?} start delay {} exceeds bound {}",
            job.id,
            delay,
            bound
        );
    }
    std::fs::remove_dir_all(root).ok();
}

/// Per-user caps shed the flooding user's excess frames without touching
/// a well-behaved neighbor.
#[test]
fn per_user_cap_rejects_the_flooder_not_the_neighbor() {
    let policy = OverloadPolicy {
        max_per_user: Some(2),
        ..OverloadPolicy::default()
    };
    let (service, root) = overload_service("usercap", policy);
    let flooder = ServiceClient::new(UserId(0), service.request_sender());
    let neighbor = ServiceClient::new(UserId(1), service.request_sender());

    // Ten frames of *distinct* actions (so coalescing can't thin them)
    // from one user, then a single frame from another user, all inside
    // one wide cycle.
    let flood: Vec<_> = (0..10)
        .map(|i| flooder.render_interactive(ActionId(i), DatasetId(0), frame(0.1 * i as f32)))
        .collect();
    let neighbor_rx = neighbor.render_interactive(ActionId(100), DatasetId(1), frame(0.9));

    let replies: Vec<RenderReply> = flood.iter().map(|rx| recv(rx, "flood")).collect();
    for (i, reply) in replies.iter().enumerate() {
        if i < 2 {
            assert!(
                matches!(reply.outcome, RenderOutcome::Frame(_)),
                "frame {i} is under the cap, got {:?}",
                reply.outcome
            );
        } else {
            assert!(
                matches!(
                    reply.outcome,
                    RenderOutcome::Rejected(RejectReason::UserCap)
                ),
                "frame {i} is over the cap, got {:?}",
                reply.outcome
            );
        }
    }
    recv(&neighbor_rx, "neighbor frame").expect_frame();

    let stats = service.drain_and_shutdown();
    assert_eq!(stats.overload.admitted, 3);
    assert_eq!(stats.overload.rejected, 8);
    assert_eq!(stats.jobs_completed, 3);
    std::fs::remove_dir_all(root).ok();
}

/// The TCP boundary: a full admission queue answers `Overloaded
/// (QueueFull)` instead of blocking the socket, and the client-side retry
/// helper surfaces the verdict once its retries are exhausted. The server
/// feeds a one-slot queue that nothing drains, so the outcome is
/// deterministic.
#[test]
fn tcp_boundary_answers_queue_full_when_admission_queue_is_full() {
    let (tx, rx) = crossbeam::channel::bounded(1);
    let server = TcpServer::start("127.0.0.1:0", tx).expect("bind");
    let client =
        RemoteClient::connect_with(server.addr(), UserId(0), ClientOptions::new().retries(2))
            .expect("connect");

    // The first request occupies the single queue slot (nobody serves
    // it); the second must be refused at the boundary.
    let _parked = client
        .render_interactive(ActionId(0), DatasetId(0), frame(0.1))
        .expect("submit");
    let refused = client
        .render_interactive(ActionId(0), DatasetId(0), frame(0.2))
        .expect("submit")
        .recv_timeout(Duration::from_secs(30))
        .expect("a verdict");
    assert!(
        matches!(
            refused,
            WireResponse::Overloaded {
                reason: RejectReason::QueueFull,
                ..
            }
        ),
        "expected QueueFull, got {refused:?}"
    );

    // The blocking call backs off and resubmits per the client's options;
    // with the queue still full it must hand back the final Overloaded
    // verdict, not hang.
    let exhausted = client
        .render_interactive_blocking(ActionId(0), DatasetId(0), frame(0.3))
        .expect("submit");
    assert!(
        matches!(
            exhausted,
            WireResponse::Overloaded {
                reason: RejectReason::QueueFull,
                ..
            }
        ),
        "expected exhausted retries to surface QueueFull, got {exhausted:?}"
    );

    drop(client);
    server.stop();
    drop(rx);
}

/// End-to-end over TCP against a real policed service: a flood of
/// distinct-action frames hits the global in-flight cap, the excess is
/// answered `Overloaded`, and a retrying client eventually gets its frame
/// once the in-flight work drains.
#[test]
fn tcp_retry_recovers_once_the_cap_drains() {
    let policy = OverloadPolicy {
        max_in_flight: Some(2),
        ..OverloadPolicy::default()
    };
    let (service, root) = overload_service("tcpretry", policy);
    let server = TcpServer::start("127.0.0.1:0", service.request_sender()).expect("bind");
    let client =
        RemoteClient::connect_with(server.addr(), UserId(0), ClientOptions::new().retries(50))
            .expect("connect");

    let receivers: Vec<_> = (0..8)
        .map(|i| {
            client
                .render_interactive(ActionId(i), DatasetId(0), frame(0.1 * i as f32))
                .expect("submit")
        })
        .collect();
    let mut frames = 0;
    let mut overloaded = 0;
    for rx in &receivers {
        match rx.recv_timeout(Duration::from_secs(60)).expect("a reply") {
            WireResponse::Frame(_) => frames += 1,
            WireResponse::Overloaded {
                reason: RejectReason::GlobalCap,
                ..
            } => overloaded += 1,
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert_eq!(frames, 2, "the cap admits exactly two of the burst");
    assert_eq!(overloaded, 6);

    // A patient client retries past the transient rejections and renders.
    let recovered = client
        .render_interactive_blocking(ActionId(99), DatasetId(1), frame(0.7))
        .expect("submit");
    assert!(
        recovered.into_frame().is_some(),
        "retry must recover once the in-flight frames complete"
    );

    drop(client);
    server.stop();
    let stats = service.drain_and_shutdown();
    assert_eq!(stats.jobs_completed, 3, "two burst frames + the retry");
    assert!(stats.overload.rejected >= 6);
    std::fs::remove_dir_all(root).ok();
}
