//! Property-based equivalence of the swap compositing algorithms against
//! the sequential front-to-back fold, over random layer stacks.

use proptest::prelude::*;
use vizsched_compositing::{composite, composite_reference, sort_by_visibility, CompositeAlgo};
use vizsched_render::{Layer, RgbaImage};

fn arbitrary_layers(counts: &'static [usize]) -> impl Strategy<Value = Vec<Layer>> {
    (
        prop::sample::select(counts),
        1usize..12,
        1usize..12,
        any::<u64>(),
    )
        .prop_map(|(count, w, h, seed)| {
            // Deterministic pseudo-random pixels from the seed.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f32 / (1u64 << 53) as f32
            };
            (0..count)
                .map(|i| {
                    let mut image = RgbaImage::transparent(w, h);
                    for px in &mut image.pixels {
                        let a = next().clamp(0.0, 1.0);
                        *px = [a * next(), a * next(), a * next(), a];
                    }
                    Layer {
                        image,
                        depth: next() * 100.0 + i as f32 * 1e-3,
                    }
                })
                .collect()
        })
}

fn reference(layers: &[Layer]) -> RgbaImage {
    let sorted = sort_by_visibility(layers.to_vec());
    let images: Vec<RgbaImage> = sorted.into_iter().map(|l| l.image).collect();
    composite_reference(&images)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary swap equals the sequential fold for power-of-two stacks.
    #[test]
    fn binary_swap_equivalent(layers in arbitrary_layers(&[2, 4, 8, 16])) {
        let expect = reference(&layers);
        let got = composite(layers, CompositeAlgo::BinarySwap);
        prop_assert!(got.max_abs_diff(&expect) < 1e-4);
    }

    /// 2-3 swap equals the sequential fold for 2^a * 3^b stacks.
    #[test]
    fn swap23_equivalent(layers in arbitrary_layers(&[2, 3, 4, 6, 8, 9, 12, 18])) {
        let expect = reference(&layers);
        let got = composite(layers, CompositeAlgo::Swap23);
        prop_assert!(got.max_abs_diff(&expect) < 1e-4);
    }

    /// Auto always produces the reference result, whatever the count.
    #[test]
    fn auto_equivalent(layers in arbitrary_layers(&[1, 2, 3, 5, 6, 7, 10, 11])) {
        let expect = reference(&layers);
        let got = composite(layers, CompositeAlgo::Auto);
        prop_assert!(got.max_abs_diff(&expect) < 1e-4);
    }

    /// Compositing is invariant to the input order of the layers (the
    /// depth sort normalizes it).
    #[test]
    fn input_order_invariant(layers in arbitrary_layers(&[4, 6, 8])) {
        let mut shuffled = layers.clone();
        shuffled.reverse();
        let a = composite(layers, CompositeAlgo::Swap23);
        let b = composite(shuffled, CompositeAlgo::Swap23);
        prop_assert!(a.max_abs_diff(&b) < 1e-5);
    }
}
