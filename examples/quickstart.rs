//! Quickstart: schedule a small multi-user workload through the
//! discrete-event simulator with the paper's scheduler and print what
//! happened.
//!
//! ```text
//! cargo run --release -p vizsched-integration --example quickstart
//! ```

use vizsched_core::prelude::*;
use vizsched_metrics::SchedulerReport;
use vizsched_sim::{RunOptions, SimConfig, Simulation};
use vizsched_workload::{
    ActionBehavior, BatchModel, DatasetChoice, InteractiveModel, WorkloadSpec,
};

fn main() {
    // A 4-node cluster; each node can cache 2 GiB of chunks.
    let cluster = ClusterSpec::homogeneous(4, 2 << 30);

    // Three 2 GiB datasets, decomposed into 512 MiB chunks by the engine.
    let datasets = uniform_datasets(3, 2 << 30);

    // Two users dragging cameras at 33 fps for 10 seconds, plus a couple
    // of batch animations.
    let workload = WorkloadSpec {
        length: SimDuration::from_secs(10),
        interactive: InteractiveModel {
            slots: 2,
            period: SimDuration::from_millis(30),
            behavior: ActionBehavior::Sessions {
                mean_action: SimDuration::from_secs(3),
                mean_think: SimDuration::from_millis(500),
            },
        },
        batch: BatchModel {
            submissions: 2,
            frames_min: 20,
            frames_max: 40,
            window_frac: 0.5,
        },
        dataset_count: 3,
        dataset_choice: DatasetChoice::Uniform,
        seed: 42,
    };
    let jobs = workload.generate();
    println!("generated {} jobs", jobs.len());

    // Simulate under the paper's scheduler (OURS).
    let mut config = SimConfig::new(cluster, CostParams::eight_node_cluster(), 512 << 20);
    config.warm_start = true;
    let sim = Simulation::new(config, datasets);
    let outcome = sim.run_opts(
        jobs,
        RunOptions::new(SchedulerKind::Ours).label("quickstart"),
    );

    let report = SchedulerReport::from_run(&outcome.record);
    println!(
        "interactive jobs: {} at {:.2} fps (target 33.33), mean latency {:.1} ms",
        report.interactive_jobs,
        report.fps.mean,
        report.interactive_latency.mean * 1e3,
    );
    println!(
        "batch jobs: {} with mean latency {:.2} s",
        report.batch_jobs, report.batch_latency.mean
    );
    println!(
        "cache hit rate {:.2}% over {} tasks; scheduling cost {:.2} us/job",
        report.hit_rate * 100.0,
        outcome.record.cache_hits + outcome.record.cache_misses,
        report.sched_cost_us,
    );
    assert_eq!(outcome.incomplete_jobs, 0);
}
