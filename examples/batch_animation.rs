//! Batch mode over time-varying data: render an animation of an advecting
//! plume (the §I "visualizing time-varying data" use case) without any
//! service — straight through the bricked renderer and 2-3 swap
//! compositing — and write the frames as PPMs.
//!
//! ```text
//! cargo run --release -p vizsched-integration --example batch_animation
//! ```

use std::time::Instant;
use vizsched_compositing::{composite, CompositeAlgo};
use vizsched_render::raycast::render_brick;
use vizsched_render::{Camera, RenderSettings, TransferFunction};
use vizsched_volume::{split_z, Field, TimeSeries, Volume};

fn main() {
    let steps = 8u32;
    let dims = [40usize, 40, 80];
    let series = TimeSeries::new(Field::Plume, steps);
    let tf = TransferFunction::preset(0);
    let settings = RenderSettings {
        width: 160,
        height: 160,
        ..RenderSettings::default()
    };

    println!(
        "rendering {steps} time steps of {} at {dims:?}",
        Field::Plume.name()
    );
    let t0 = Instant::now();
    for t in 0..steps {
        let volume: Volume<f32> = series.sample_step(t, dims);
        let bricks = split_z(&volume, 4);
        // The camera orbits while time advances, like a real flythrough.
        let camera = Camera::orbit(dims, 0.3 + t as f32 * 0.15, 0.2, 2.4);
        let layers: Vec<_> = bricks
            .iter()
            .map(|b| render_brick(b, &camera, &tf, &settings))
            .collect();
        let frame = composite(layers, CompositeAlgo::Swap23);
        let path = format!("animation-{t:02}.ppm");
        frame
            .save_ppm(std::path::Path::new(&path))
            .expect("write frame");
        println!(
            "  step {t}: coverage {:.1}% -> {path}",
            frame.coverage() * 100.0
        );
    }
    println!("rendered {steps} frames in {:.2?}", t0.elapsed());
}
