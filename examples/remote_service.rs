//! Remote visualization over TCP — the paper's deployment shape: the
//! rendering service runs on "the cluster" (here, this process), and a
//! client connects over a real socket, pipelines interactive frames, and
//! receives quantized RGBA images back.
//!
//! ```text
//! cargo run --release -p vizsched-integration --example remote_service
//! ```

use std::sync::Arc;
use std::time::Duration;
use vizsched_core::ids::{ActionId, DatasetId, UserId};
use vizsched_core::job::FrameParams;
use vizsched_service::{
    ChunkStore, RemoteClient, ServiceConfig, StoreDataset, TcpServer, VizService,
};
use vizsched_volume::Field;

fn main() {
    let root = std::env::temp_dir().join(format!("vizsched-remote-{}", std::process::id()));
    let store = ChunkStore::create(
        &root,
        &[StoreDataset {
            field: Field::Supernova,
            dims: [48, 48, 48],
            bricks: 4,
        }],
    )
    .expect("store");

    let service = VizService::start(
        ServiceConfig {
            nodes: 4,
            image_size: (160, 160),
            ..ServiceConfig::default()
        },
        Arc::new(store),
    );
    let server = TcpServer::start("127.0.0.1:0", service.request_sender()).expect("bind");
    println!("service listening on {}", server.addr());

    // A remote user orbits the camera; frames are pipelined 4 deep.
    let client = RemoteClient::connect(server.addr(), UserId(0)).expect("connect");
    let receivers: Vec<_> = (0..8)
        .map(|i| {
            let frame = FrameParams {
                azimuth: i as f32 * 0.25,
                elevation: 0.3,
                ..FrameParams::default()
            };
            client
                .render_interactive(ActionId(0), DatasetId(0), frame)
                .expect("submit")
        })
        .collect();

    for (i, rx) in receivers.into_iter().enumerate() {
        let resp = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("frame over tcp")
            .into_frame()
            .expect("a frame");
        println!(
            "frame {i}: {}x{} px, latency {}, {} misses, {} KiB on the wire",
            resp.width,
            resp.height,
            resp.latency,
            resp.cache_misses,
            resp.pixels.len() / 1024,
        );
        if i == 7 {
            let image = resp.to_image();
            image
                .save_ppm(std::path::Path::new("remote-frame.ppm"))
                .expect("write frame");
            println!(
                "last frame saved to remote-frame.ppm ({:.1}% coverage)",
                image.coverage() * 100.0
            );
        }
    }

    drop(client);
    server.stop();
    let stats = service.drain_and_shutdown();
    println!(
        "served {} jobs; {} hits / {} misses",
        stats.jobs_completed, stats.cache_hits, stats.cache_misses
    );
    std::fs::remove_dir_all(&root).ok();
}
