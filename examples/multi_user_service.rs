//! The headline use case: a *live* shared visualization service. Three
//! users interactively explore different datasets while a fourth submits a
//! batch animation; every frame is really ray-cast by render-node threads,
//! composited with 2-3 swap, and returned. One frame per user is saved as
//! a PPM so you can look at what the service rendered.
//!
//! ```text
//! cargo run --release -p vizsched-integration --example multi_user_service
//! ```

use std::sync::Arc;
use std::time::Duration;
use vizsched_core::ids::{ActionId, BatchId, DatasetId, UserId};
use vizsched_core::job::FrameParams;
use vizsched_service::{ChunkStore, ServiceClient, ServiceConfig, StoreDataset, VizService};
use vizsched_volume::Field;

fn main() {
    let root = std::env::temp_dir().join(format!("vizsched-demo-{}", std::process::id()));
    println!("materializing datasets under {} ...", root.display());
    let store = ChunkStore::create(
        &root,
        &[
            StoreDataset {
                field: Field::Plume,
                dims: [48, 48, 96],
                bricks: 4,
            },
            StoreDataset {
                field: Field::Combustion,
                dims: [64, 64, 48],
                bricks: 4,
            },
            StoreDataset {
                field: Field::Supernova,
                dims: [56, 56, 56],
                bricks: 4,
            },
        ],
    )
    .expect("store");

    let service = VizService::start(
        ServiceConfig {
            nodes: 4,
            image_size: (192, 192),
            ..ServiceConfig::default()
        },
        Arc::new(store),
    );

    // Three interactive users on three datasets.
    let users: Vec<ServiceClient> = (0..3)
        .map(|u| ServiceClient::new(UserId(u), service.request_sender()))
        .collect();
    let mut receivers = Vec::new();
    for step in 0..8 {
        for (u, client) in users.iter().enumerate() {
            let frame = FrameParams {
                azimuth: 0.4 + step as f32 * 0.08,
                elevation: 0.25,
                ..FrameParams::default()
            };
            receivers.push((
                u,
                step,
                client.render_interactive(ActionId(u as u64), DatasetId(u as u32), frame),
            ));
        }
        std::thread::sleep(Duration::from_millis(30));
    }

    // A fourth user submits a short batch animation over dataset 0.
    let batch_user = ServiceClient::new(UserId(9), service.request_sender());
    let frames: Vec<FrameParams> = (0..6)
        .map(|i| FrameParams {
            azimuth: i as f32 * 0.3,
            ..FrameParams::default()
        })
        .collect();
    let batch_rx = batch_user.render_batch(BatchId(0), DatasetId(0), &frames);

    // Collect interactive frames; save the last frame of each user.
    let names = ["plume", "combustion", "supernova"];
    for (u, step, rx) in receivers {
        let result = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("interactive frame")
            .expect_frame();
        if step == 7 {
            let path = format!("service-user{u}-{}.ppm", names[u]);
            result
                .image
                .save_ppm(std::path::Path::new(&path))
                .expect("write ppm");
            println!(
                "user {u} ({}) frame: latency {:.1} ms, {} cache misses -> {path}",
                names[u],
                result.latency.as_millis_f64(),
                result.cache_misses,
            );
        }
    }

    let mut batch_done = 0;
    while batch_done < frames.len() {
        batch_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("batch frame");
        batch_done += 1;
    }
    println!("batch animation: {batch_done} frames rendered");

    let stats = service.drain_and_shutdown();
    println!(
        "service stats: {} jobs, {} hits / {} misses, mean latency {:.1} ms",
        stats.jobs_completed,
        stats.cache_hits,
        stats.cache_misses,
        stats.mean_latency_secs * 1e3,
    );
    // The live run reports through the same metrics pipeline as the
    // simulator.
    let report = vizsched_metrics::SchedulerReport::from_run(&stats.record);
    println!(
        "live report: scheduler {} | per-action fps {:.1} | hit rate {:.1}% | sched {:.1} us/job",
        report.scheduler,
        report.fps.mean,
        report.hit_rate * 100.0,
        report.sched_cost_us,
    );
    std::fs::remove_dir_all(&root).ok();
}
