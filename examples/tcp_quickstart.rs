//! The smallest complete remote deployment: materialize a dataset, start
//! the service with an overload policy, expose it over TCP, and render
//! three frames from a remote client — with `ClientOptions` retries
//! absorbing any transient `Overloaded` verdicts. This is the README's TCP
//! quickstart, compiled and run by the CI docs job.
//!
//! ```text
//! cargo run --release -p vizsched-integration --example tcp_quickstart
//! ```

use std::sync::Arc;
use vizsched_core::ids::{ActionId, DatasetId, UserId};
use vizsched_core::job::FrameParams;
use vizsched_service::{
    ChunkStore, ClientOptions, OverloadPolicy, RemoteClient, ServiceConfig, StoreDataset,
    TcpServer, VizService,
};
use vizsched_volume::Field;

fn main() {
    // 1. A dataset on disk, bricked into one chunk per render node.
    let root = std::env::temp_dir().join(format!("vizsched-tcp-{}", std::process::id()));
    let store = ChunkStore::create(
        &root,
        &[StoreDataset {
            field: Field::Plume,
            dims: [32, 32, 64],
            bricks: 4,
        }],
    )
    .expect("store");

    // 2. The service: 4 render-node threads, Algorithm 1 on the head,
    //    bounded admission with stale-frame coalescing.
    let policy = OverloadPolicy {
        max_in_flight: Some(16),
        coalesce_interactive: true,
        ..OverloadPolicy::default()
    };
    let service = VizService::start(
        ServiceConfig::default()
            .nodes(4)
            .image_size(64, 64)
            .overload(policy),
        Arc::new(store),
    );

    // 3. A real socket in front of it.
    let server = TcpServer::start("127.0.0.1:0", service.request_sender()).expect("bind");
    println!("vizsched listening on {}", server.addr());

    // 4. A remote user orbits the camera; client-side retries (configured
    //    once, on the connection) ride out transient overload.
    let client =
        RemoteClient::connect_with(server.addr(), UserId(0), ClientOptions::new().retries(10))
            .expect("connect");
    for i in 0..3 {
        let frame = FrameParams {
            azimuth: i as f32 * 0.4,
            ..FrameParams::default()
        };
        let resp = client
            .render_interactive_blocking(ActionId(0), DatasetId(0), frame)
            .expect("submit");
        let frame = resp.into_frame().expect("a rendered frame");
        println!(
            "frame {i}: {}x{} px, latency {}",
            frame.width, frame.height, frame.latency
        );
    }

    drop(client);
    server.stop();
    let stats = service.drain_and_shutdown();
    println!(
        "served {} jobs ({} admitted, {} shed)",
        stats.jobs_completed,
        stats.overload.admitted,
        stats.overload.shed()
    );
    std::fs::remove_dir_all(&root).ok();
}
