//! Level-of-detail preview: render a coarse mip level for instant feedback
//! and the full level for the final frame — the "subsampling" remote-
//! visualization strategy the paper's related work weighs (Freitag & Loy),
//! combined with min–max empty-space skipping to accelerate the full pass.
//!
//! ```text
//! cargo run --release -p vizsched-integration --example lod_preview
//! ```

use std::time::Instant;
use vizsched_render::raycast::{render_parallel, render_with_skip};
use vizsched_render::{Camera, MinMaxGrid, RenderSettings, TransferFunction};
use vizsched_volume::{build_pyramid, Field, Volume};

fn main() {
    let dims = [96usize, 96, 96];
    let base: Volume<f32> = Field::Supernova.sample(dims);
    let pyramid = build_pyramid(base, 12);
    println!(
        "pyramid levels: {:?}",
        pyramid.iter().map(|l| l.dims).collect::<Vec<_>>()
    );

    let tf = TransferFunction::preset(0);
    let settings = RenderSettings {
        width: 256,
        height: 256,
        ..RenderSettings::default()
    };

    // Coarse preview: render the smallest level.
    let coarse = pyramid.last().expect("non-empty pyramid");
    let cam_coarse = Camera::orbit(coarse.dims, 0.5, 0.3, 2.3);
    let t0 = Instant::now();
    let preview = render_parallel(coarse, &cam_coarse, &tf, &settings);
    let preview_time = t0.elapsed();
    preview
        .save_ppm(std::path::Path::new("lod-preview.ppm"))
        .expect("write preview");

    // Full-resolution pass, accelerated by empty-space skipping.
    let full = &pyramid[0];
    let cam_full = Camera::orbit(full.dims, 0.5, 0.3, 2.3);
    let grid = MinMaxGrid::build(full, 8);
    let t1 = Instant::now();
    let (final_frame, samples) = render_with_skip(full, &cam_full, &tf, &settings, &grid);
    let full_time = t1.elapsed();
    final_frame
        .save_ppm(std::path::Path::new("lod-full.ppm"))
        .expect("write full");

    println!(
        "preview ({:?}): {:.0} ms -> lod-preview.ppm ({:.1}% coverage)",
        coarse.dims,
        preview_time.as_secs_f64() * 1e3,
        preview.coverage() * 100.0
    );
    println!(
        "full ({dims:?}): {:.0} ms, {samples} samples with skipping -> lod-full.ppm \
         ({:.1}% coverage)",
        full_time.as_secs_f64() * 1e3,
        final_frame.coverage() * 100.0
    );
    assert!(
        preview_time < full_time,
        "the preview should be the fast path"
    );
}
