//! Compare all six scheduling policies on a miniature mixed workload — the
//! §I motivation in one binary: several users exploring interactively
//! while batch animations stream in, on a cluster whose memory cannot hold
//! every dataset.
//!
//! ```text
//! cargo run --release -p vizsched-integration --example scheduler_comparison
//! ```

use vizsched_core::sched::SchedulerKind;
use vizsched_core::time::SimDuration;
use vizsched_metrics::{format_comparison, SchedulerReport};
use vizsched_sim::{RunOptions, SimConfig, Simulation};
use vizsched_workload::Scenario;

const GIB: u64 = 1 << 30;

fn main() {
    // 8 nodes x 2 GiB of cache; 6 datasets x 4 GiB = 24 GiB > 16 GiB memory.
    let scenario = Scenario::sweep(
        "comparison",
        8,
        2 * GIB,
        6,
        4 * GIB,
        4, // four concurrent users
        SimDuration::from_secs(20),
        3, // three batch submissions
        7,
    );
    let mut config = SimConfig::new(scenario.cluster.clone(), scenario.cost, scenario.chunk_max);
    config.exec_jitter = 0.05;
    config.warm_start = true;
    let sim = Simulation::new(config, scenario.datasets());
    let jobs = scenario.jobs();
    println!(
        "{} jobs ({} interactive / {} batch) on 8 nodes, data 1.5x memory\n",
        jobs.len(),
        jobs.iter().filter(|j| j.kind.is_interactive()).count(),
        jobs.iter().filter(|j| !j.kind.is_interactive()).count(),
    );

    let mut reports = Vec::new();
    for kind in SchedulerKind::ALL {
        let outcome = sim.run_opts(jobs.clone(), RunOptions::new(kind).label("comparison"));
        assert_eq!(
            outcome.incomplete_jobs,
            0,
            "{} left work behind",
            kind.name()
        );
        reports.push(SchedulerReport::from_run(&outcome.record));
    }
    println!("{}", format_comparison(&reports));
    println!(
        "Watch for: the locality-blind policies (FS/SF/FCFS) collapse to \
         sub-1 fps; FCFSU burns whole-cluster overhead per frame; FCFSL is \
         dragged down by batch-induced swaps; OURS defers batch work and \
         stays near the 33.33 fps target."
    );
}
